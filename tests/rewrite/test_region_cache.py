"""Cleansing-region cache: subsumption, correctness, invalidation.

The cache serves Φ_C(σ_ec(R)) materializations to later queries whose
cleansing region is provably contained in a cached one (predicate
subsumption via the difference-closure machinery). Correctness demands
that a cache hit is *observationally invisible*: identical rows to a
cold rewrite, and staleness detected whenever the base table changes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.sqlparse import parse_expression
from repro.rewrite import DeferredCleansingEngine
from repro.rewrite.cache import (
    CacheOptions,
    CleansingRegionCache,
    conjunction_implies,
)
from repro.sqlts import RuleRegistry

SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
)

RULES = {
    "duplicate": """
        DEFINE duplicate ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 50
        ACTION DELETE B""",
    "reader": """
        DEFINE reader ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B) WHERE B.reader = 'rx' AND B.rtime - A.rtime < 60
        ACTION DELETE A""",
    "replacing": """
        DEFINE replacing ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = 'l2' AND B.biz_loc = 'la'
          AND B.rtime - A.rtime < 80
        ACTION MODIFY A.biz_loc = 'l1'""",
    "cycle": """
        DEFINE cycle ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
        ACTION DELETE B""",
}

ROW = st.tuples(
    st.sampled_from(["e1", "e2", "e3"]),
    st.integers(0, 400),
    st.sampled_from(["r0", "r1", "rx"]),
    st.sampled_from(["l1", "l2", "la", "lb"]),
)


def _unique_sequence_times(rows):
    seen = set()
    out = []
    for row in rows:
        if (row[0], row[1]) in seen:
            continue
        seen.add((row[0], row[1]))
        out.append(row)
    return out


def make_engines(rows, rule_names):
    """One database shared by a cached and an uncached engine."""
    db = Database()
    db.create_table("r", SCHEMA)
    db.load("r", rows)
    db.create_index("r", "rtime")
    registry = RuleRegistry()
    for name in rule_names:
        registry.define(RULES[name])
    cached = DeferredCleansingEngine(db, registry, cache=CacheOptions())
    plain = DeferredCleansingEngine(db, registry)
    return db, cached, plain


def q(predicate):
    suffix = f" where {predicate}" if predicate else ""
    return f"select epc, rtime, reader, biz_loc from r{suffix}"


class TestConjunctionImplies:
    def imp(self, facts, goals):
        return conjunction_implies(
            [parse_expression(f) for f in facts],
            [parse_expression(g) for g in goals])

    def test_structural_and_reflexive(self):
        assert self.imp(["rtime <= 100"], ["rtime <= 100"])
        assert self.imp(["biz_loc = 'l1'"], ["biz_loc = 'l1'"])

    def test_range_tightening(self):
        assert self.imp(["rtime <= 100"], ["rtime <= 200"])
        assert self.imp(["rtime < 100"], ["rtime <= 100"])
        assert self.imp(["rtime >= 50"], ["rtime >= 10"])
        assert not self.imp(["rtime <= 200"], ["rtime <= 100"])
        assert not self.imp(["rtime <= 100"], ["rtime < 100"])

    def test_conjunction_of_goals_needs_every_goal(self):
        assert self.imp(["rtime <= 100", "rtime >= 10"],
                        ["rtime <= 150", "rtime >= 5"])
        assert not self.imp(["rtime <= 100"],
                            ["rtime <= 150", "rtime >= 5"])

    def test_disjunctive_goal(self):
        assert self.imp(["rtime <= 100"],
                        ["rtime <= 150 or biz_loc = 'l1'"])

    def test_disjunctive_fact_case_split(self):
        assert self.imp(["rtime <= 50 or rtime <= 90"], ["rtime <= 100"])
        assert not self.imp(["rtime <= 50 or rtime <= 300"],
                            ["rtime <= 100"])

    def test_unrelated_columns_decline(self):
        # Sound but incomplete: unknown structure must answer False.
        assert not self.imp(["reader = 'r1'"], ["rtime <= 100"])


ROWS = [("e1", t, "r0" if t % 3 else "rx", loc)
        for t, loc in zip(range(0, 400, 10),
                          ["l1", "l2", "la", "lb"] * 10)]


class TestRegionCacheHits:
    def test_narrower_window_hits_and_matches(self):
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        wide, narrow = q("rtime <= 300"), q("rtime <= 120")

        assert sorted(cached.execute(wide).rows) == \
            sorted(plain.execute(wide).rows)
        cache = cached.region_cache
        assert cache.stores == 1 and cache.misses == 1

        assert sorted(cached.execute(narrow).rows) == \
            sorted(plain.execute(narrow).rows)
        assert cache.hits == 1

    def test_wider_window_is_a_miss(self):
        db, cached, plain = make_engines(ROWS, ("duplicate",))
        cached.execute(q("rtime <= 100"))
        assert sorted(cached.execute(q("rtime <= 300")).rows) == \
            sorted(plain.execute(q("rtime <= 300")).rows)
        assert cached.region_cache.hits == 0
        assert cached.region_cache.stores == 2

    def test_insert_patches_instead_of_invalidating(self):
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        sql = q("rtime <= 300")
        cached.execute(sql)
        cached.execute(sql)
        cache = cached.region_cache
        assert cache.hits == 1

        db.run("insert into r values ('e9', 155, 'rx', 'la')")

        # The appended row dirties one new sequence; the delta log lets
        # the cache re-cleanse just that sequence and splice it in.
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cache.invalidations == 0
        assert cache.patches == 1
        assert cache.sequences_recleaned == 1
        assert cache.hits == 2  # the patched entry was served

    def test_infeasible_rules_bypass_cache(self):
        db, cached, plain = make_engines(ROWS, ("cycle",))
        sql = q("rtime <= 300")
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert len(cached.region_cache) == 0

    def test_disabled_cache_has_no_region_cache(self):
        db = Database()
        db.create_table("r", SCHEMA)
        registry = RuleRegistry()
        registry.define(RULES["duplicate"])
        engine = DeferredCleansingEngine(db, registry,
                                         cache=CacheOptions(enabled=False))
        assert engine.region_cache is None


def _cache_db():
    db = Database()
    db.create_table("r", SCHEMA)
    db.load("r", ROWS)
    db.create_index("r", "rtime")
    return db


class TestEviction:
    def test_lru_entry_count_budget(self):
        db = _cache_db()
        table = db.catalog.table("r")
        cache = CleansingRegionCache(db, CacheOptions(max_entries=2))
        rows = [tuple(r) for r in ROWS]
        # Distinct rule keys so the entries can never subsume each other.
        for key in ("a", "b", "c"):
            cache.store(table, (key,),
                        (parse_expression("rtime <= 300"),), rows)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The oldest entry ("a") was evicted; its temp table is gone too.
        assert cache.lookup(table, ("a",),
                            (parse_expression("rtime <= 300"),)) is None
        assert cache.lookup(table, ("c",),
                            (parse_expression("rtime <= 100"),)) is not None
        assert sum(name.startswith("__region_cache_")
                   for name in db.catalog.table_names()) == 2

    def test_byte_budget_rejects_oversized_region(self):
        db = _cache_db()
        cache = CleansingRegionCache(db, CacheOptions(max_bytes=1))
        stored = cache.store(db.catalog.table("r"), ("duplicate",),
                             (parse_expression("rtime <= 300"),),
                             [tuple(r) for r in ROWS])
        assert stored is None
        assert len(cache) == 0


PREDS = st.sampled_from(["rtime <= {t}", "rtime <= {t} and reader != 'r1'"])


@settings(max_examples=40, deadline=None)
@given(rows=st.lists(ROW, min_size=0, max_size=30)
       .map(_unique_sequence_times),
       rule_names=st.lists(st.sampled_from(sorted(RULES)), min_size=1,
                           max_size=2, unique=True),
       predicate=PREDS,
       t_wide=st.integers(100, 400),
       narrows=st.lists(st.integers(0, 400), min_size=1, max_size=4))
def test_cached_results_identical_to_cold(rows, rule_names, predicate,
                                          t_wide, narrows):
    """Property: with the cache on, every query — hit, cold store, or
    bypass — returns exactly the rows of an uncached engine."""
    db, cached, plain = make_engines(rows, rule_names)
    workload = [predicate.format(t=t_wide)]
    workload += [predicate.format(t=min(t, t_wide)) for t in narrows]
    for pred in workload:
        sql = q(pred)
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows), (pred, rule_names)


@settings(max_examples=25, deadline=None)
@given(rows=st.lists(ROW, min_size=1, max_size=25)
       .map(_unique_sequence_times),
       extra=ROW, t=st.integers(50, 400))
def test_insert_invalidation_property(rows, extra, t):
    """Property: an INSERT between identical queries never yields stale
    rows."""
    db, cached, plain = make_engines(rows, ("reader", "duplicate"))
    sql = q(f"rtime <= {t}")
    cached.execute(sql)
    values = ", ".join(repr(v) for v in extra)
    db.run(f"insert into r values ({values})")
    assert sorted(cached.execute(sql).rows) == \
        sorted(plain.execute(sql).rows)


class TestInvalidationRaces:
    """Version bumps landing at every awkward point of the warm path.

    The cache records ``source_table.version`` at store time and prunes
    on every lookup; these tests pin the equivalence guarantee when the
    bump races the store/lookup/hit sequence rather than arriving
    between well-separated queries.
    """

    def test_bump_between_store_and_lookup(self):
        db = _cache_db()
        table = db.catalog.table("r")
        cache = CleansingRegionCache(db)
        ec = (parse_expression("rtime <= 300"),)
        cache.store(table, ("duplicate",), ec, [tuple(r) for r in ROWS])
        table.insert({"epc": "e9", "rtime": 401, "reader": "r0",
                      "biz_loc": "l1"})
        assert cache.lookup(table, ("duplicate",), ec) is None
        assert cache.invalidations == 1
        # The stale region's temp table is gone from the catalog too.
        assert not any(name.startswith("__region_cache_")
                       for name in db.catalog.table_names())

    def test_bump_between_two_warm_hits(self):
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        sql = q("rtime <= 300")
        cached.execute(sql)                      # cold store
        cached.execute(sql)                      # warm hit
        cache = cached.region_cache
        assert cache.hits == 1
        db.run("insert into r values ('e9', 155, 'rx', 'la')")
        # The next execution must not serve the stale rows as-is: the
        # entry is patched (dirty sequence re-cleansed) before serving.
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cache.patches == 1 and cache.hits == 2
        assert cache.invalidations == 0
        # ... and the patched region keeps serving plain hits.
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cache.hits == 3

    def test_every_interleaved_append_patches(self):
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        sql = q("rtime <= 300")
        for step in range(3):
            cached.execute(sql)  # store (step 0) / warm hit (patched)
            db.run(f"insert into r values ('e{step}', {150 + step}, "
                   "'rx', 'la')")
            assert sorted(cached.execute(sql).rows) == \
                sorted(plain.execute(sql).rows), step
        # One cold store, then every post-insert execution patched the
        # same entry in place; no invalidation ever fired.
        assert cached.region_cache.invalidations == 0
        assert cached.region_cache.patches == 3
        assert cached.region_cache.hits == 5
        assert cached.region_cache.stores == 1

    def test_whole_region_dirty_invalidates_not_patches(self):
        # ROWS is a single sequence (epc e1); appending to it dirties
        # 100% of the region's sequences, over max_patch_fraction — the
        # patch-vs-invalidate decision must fall back to invalidation.
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        cached.region_cache.options.max_patch_fraction = 0.4
        sql = q("rtime <= 300")
        cached.execute(sql)
        db.run("insert into r values ('e1', 155, 'rx', 'la')")
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cached.region_cache.invalidations == 1
        assert cached.region_cache.patches == 0

    def test_load_append_patches(self):
        db, cached, plain = make_engines(ROWS, ("duplicate",))
        sql = q("rtime <= 300")
        cached.execute(sql)
        # bulk loads land in the delta log too, so a post-load query
        # patches rather than re-cleansing the whole region.
        db.load("r", [("e9", 42, "r0", "l1")])
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cached.region_cache.invalidations == 0
        assert cached.region_cache.patches == 1

    def test_table_replacement_detected_without_version_bump(self):
        # Dropping and recreating the table yields a fresh object whose
        # version counter may coincide with the recorded one; staleness
        # must be detected by object identity, not the counter alone.
        db = _cache_db()
        table = db.catalog.table("r")
        cache = CleansingRegionCache(db)
        ec = (parse_expression("rtime <= 300"),)
        cache.store(table, ("duplicate",), ec, [tuple(r) for r in ROWS])
        db.drop_table("r")
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        db.create_index("r", "rtime")
        replacement = db.catalog.table("r")
        assert replacement.version == table.version
        assert cache.lookup(replacement, ("duplicate",), ec) is None
        assert cache.invalidations == 1

    def test_bump_through_second_engine_sharing_db(self):
        # A different engine (no cache) mutating the shared database
        # must still be seen by the cached engine's regions — the append
        # lands in the shared table's delta log, so it patches.
        db, cached, plain = make_engines(ROWS, ("reader", "duplicate"))
        sql = q("rtime <= 300")
        cached.execute(sql)
        plain.database.run("insert into r values ('e9', 155, 'rx', 'la')")
        assert sorted(cached.execute(sql).rows) == \
            sorted(plain.execute(sql).rows)
        assert cached.region_cache.patches == 1
        assert cached.region_cache.invalidations == 0
