"""Rewrite-engine integration tests, including the paper's Figure 3
running examples verbatim."""

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.rewrite import DeferredCleansingEngine
from repro.sqlts import RuleRegistry


def figure3a():
    """Rule C1 on R1 and query Q1 (reader rule, rtime < t1)."""
    db = Database()
    db.create_table("r1", TableSchema.of(
        ("rid", SqlType.VARCHAR), ("epc", SqlType.VARCHAR),
        ("rtime", SqlType.TIMESTAMP), ("reader", SqlType.VARCHAR)))
    t1 = 1000
    db.load("r1", [("r1", "e1", t1 - 120, "readerY"),
                   ("r2", "e1", t1 + 120, "readerX")])
    db.create_index("r1", "rtime")
    registry = RuleRegistry(db)
    registry.define("""
        DEFINE c1 ON r1 CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 5 mins
        ACTION DELETE A""")
    return DeferredCleansingEngine(db, registry), t1


def figure3b():
    """Rule C2 on R2 and query Q2 (unbounded duplicate rule, rtime > t2)."""
    db = Database()
    db.create_table("r2", TableSchema.of(
        ("rid", SqlType.VARCHAR), ("epc", SqlType.VARCHAR),
        ("rtime", SqlType.TIMESTAMP), ("biz_loc", SqlType.VARCHAR)))
    t2 = 2000
    db.load("r2", [("r3", "e2", t2 - 120, "locZ"),
                   ("r4", "e2", t2 + 120, "locZ")])
    registry = RuleRegistry(db)
    registry.define("""
        DEFINE c2 ON r2 CLUSTER BY epc SEQUENCE BY rtime
        AS (E, F) WHERE E.biz_loc = F.biz_loc
        ACTION DELETE F""")
    return DeferredCleansingEngine(db, registry), t2


class TestFigure3Examples:
    def test_q1_c1_correct_under_all_strategies(self):
        engine, t1 = figure3a()
        sql = f"select rid from r1 where rtime < {t1}"
        for strategy in ("naive", "expanded", "joinback"):
            assert engine.execute(sql, strategies={strategy}).rows == []

    def test_q1_c1_direct_pushdown_would_be_wrong(self):
        # Shows why the rewrite is needed: cleansing only σ(R1) keeps r1.
        engine, t1 = figure3a()
        restricted = engine.database.execute(
            f"select * from r1 where rtime < {t1}")
        assert len(restricted) == 1  # r1 survives without its context

    def test_q1_c1_expanded_condition_matches_paper(self):
        engine, t1 = figure3a()
        result = engine.rewrite(f"select rid from r1 where rtime < {t1}")
        rendered = [c.to_sql() for c in result.analysis.ec_conjuncts]
        assert rendered[0] == f"(rtime < {t1 + 300})"

    def test_q2_c2_expanded_infeasible(self):
        engine, t2 = figure3b()
        result = engine.rewrite(f"select rid from r2 where rtime > {t2}")
        assert not result.analysis.feasible
        assert all(c.strategy != "expanded" for c in result.candidates)

    def test_q2_c2_joinback_correct(self):
        engine, t2 = figure3b()
        sql = f"select rid from r2 where rtime > {t2}"
        assert engine.execute(sql, strategies={"joinback"}).rows == []
        assert engine.execute(sql, strategies={"naive"}).rows == []


class TestEngineBehaviour:
    def test_clean_table_passthrough(self):
        engine, _ = figure3a()
        engine.database.create_table("other", TableSchema.of(
            ("x", SqlType.INTEGER)))
        engine.database.load("other", [(1,), (2,)])
        result = engine.rewrite("select x from other")
        assert result.strategy == "passthrough"
        assert engine.execute("select x from other").as_set() == {(1,), (2,)}

    def test_multiple_occurrences_fall_back_to_naive(self):
        engine, t1 = figure3a()
        result = engine.rewrite(
            "select a.rid from r1 a, r1 b where a.epc = b.epc")
        assert result.strategy == "naive"

    def test_self_join_naive_is_consistent_with_subquery(self):
        engine, _ = figure3a()
        rows = engine.execute(
            "select a.rid from r1 a, r1 b where a.rid = b.rid").as_set()
        direct = engine.execute("select rid from r1").as_set()
        assert rows == direct

    def test_cheapest_candidate_chosen(self):
        engine, t1 = figure3a()
        result = engine.rewrite(f"select rid from r1 where rtime < {t1}")
        best = min(result.candidates, key=lambda c: c.cost)
        assert result.chosen is best
        assert set(result.costs()) >= {"naive", "expanded", "joinback"}

    def test_strategy_restriction_respected(self):
        engine, t1 = figure3a()
        result = engine.rewrite(f"select rid from r1 where rtime < {t1}",
                                strategies={"joinback"})
        assert {c.strategy for c in result.candidates} == {"joinback"}

    def test_execute_with_metrics(self):
        engine, t1 = figure3a()
        rs, metrics, result = engine.execute_with_metrics(
            f"select rid from r1 where rtime < {t1}")
        assert rs.rows == []
        assert metrics.operators > 0

    def test_rule_inside_cte_reference(self):
        engine, t1 = figure3a()
        sql = (f"with v as (select rid, rtime from r1 where rtime < {t1}) "
               "select rid from v")
        for strategy in ("naive", "expanded", "joinback"):
            assert engine.execute(sql, strategies={strategy}).rows == []

    def test_query_without_reads_predicate(self):
        engine, _ = figure3a()
        # No s conjuncts: everything must still be correct.
        naive = engine.execute("select rid from r1",
                               strategies={"naive"}).as_set()
        joinback = engine.execute("select rid from r1",
                                  strategies={"joinback"}).as_set()
        assert naive == joinback == {("r2",)}


class TestModifyThroughEngine:
    @pytest.fixture
    def engine(self):
        db = Database()
        db.create_table("r", TableSchema.of(
            ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
            ("biz_loc", SqlType.VARCHAR)))
        db.load("r", [
            ("e1", 100, "loc2"),
            ("e1", 200, "locA"),
            ("e2", 100, "locB"),
        ])
        registry = RuleRegistry(db)
        registry.define("""
            DEFINE rep ON r CLUSTER BY epc SEQUENCE BY rtime
            AS (A, B) WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA'
              AND B.rtime - A.rtime < 20 mins
            ACTION MODIFY A.biz_loc = 'loc1'""")
        return DeferredCleansingEngine(db, registry)

    def test_modified_value_visible_to_query(self, engine):
        # A biz_loc-only predicate derives no context bound, so the
        # expanded rewrite is infeasible; naive and join-back must agree.
        for strategy in ("naive", "joinback"):
            rs = engine.execute(
                "select epc from r where biz_loc = 'loc1'",
                strategies={strategy})
            assert rs.rows == [("e1",)], strategy

    def test_premodified_value_not_matched(self, engine):
        for strategy in ("naive", "joinback"):
            rs = engine.execute(
                "select epc from r where biz_loc = 'loc2'",
                strategies={strategy})
            assert rs.rows == [], strategy

    def test_expanded_infeasible_for_non_key_predicate(self, engine):
        from repro.errors import RewriteError
        import pytest as _pytest
        result = engine.rewrite("select epc from r where biz_loc = 'loc1'")
        assert not result.analysis.feasible
        with _pytest.raises(RewriteError):
            engine.rewrite("select epc from r where biz_loc = 'loc1'",
                           strategies={"expanded"})
