"""Position-preserving analysis tests (Definition 2 / Observation 1)."""

from repro.minidb.sqlparse import parse_expression
from repro.rewrite.positions import correlation_conjuncts, is_position_preserving
from repro.sqlts import parse_rule


def rule_for(pattern, condition, action="DELETE B"):
    return parse_rule(f"""
        DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
        AS {pattern} WHERE {condition} ACTION {action}""")


class TestPositionPreserving:
    def _check(self, rule, ref_name, conjunct_sql):
        ref = rule.reference(ref_name)
        return is_position_preserving(
            parse_expression(conjunct_sql), rule, ref)

    def test_cluster_key_equality_allowed(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert self._check(rule, "a", "a.epc = b.epc")

    def test_pattern_side_inequality_allowed(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert self._check(rule, "a", "a.rtime <= b.rtime")

    def test_bounded_before_window_allowed(self):
        # X before T with X.skey > T.skey - t (Observation 1(a)(2)).
        rule = rule_for("(A, B)", "B.rtime - A.rtime < 300")
        assert self._check(rule, "a", "b.rtime - a.rtime < 300")

    def test_gap_creating_bound_rejected(self):
        # "A at least 100s before B" excludes rows adjacent to the target.
        rule = rule_for("(A, B)", "B.rtime - A.rtime > 100")
        assert not self._check(rule, "a", "b.rtime - a.rtime > 100")

    def test_non_key_column_rejected(self):
        rule = rule_for("(A, B)", "A.biz_loc = B.biz_loc")
        assert not self._check(rule, "a", "a.biz_loc = b.biz_loc")

    def test_context_local_predicate_rejected(self):
        rule = rule_for("(A, B)", "A.biz_loc = 'x'")
        assert not self._check(rule, "a", "a.biz_loc = 'x'")

    def test_after_target_upper_bound_allowed(self):
        rule = rule_for("(A, B)", "B.rtime - A.rtime < 300", "DELETE A")
        ref = rule.reference("b")
        assert is_position_preserving(
            parse_expression("b.rtime - a.rtime < 300"), rule, ref)

    def test_third_reference_mentioned_rejected(self):
        rule = rule_for("(A, B, C)", "A.rtime < C.rtime")
        assert not self._check(rule, "a", "a.rtime < c.rtime")


class TestCorrelationConjuncts:
    def test_implied_conjuncts_always_present(self):
        rule = rule_for("(A, B)", "A.biz_loc = B.biz_loc")
        conjuncts = correlation_conjuncts(rule, rule.reference("a"))
        rendered = {c.to_sql() for c in conjuncts}
        assert "(a.epc = b.epc)" in rendered
        assert "(a.rtime <= b.rtime)" in rendered

    def test_position_based_drops_non_preserving(self):
        rule = rule_for("(A, B)", "A.biz_loc = B.biz_loc")
        conjuncts = correlation_conjuncts(rule, rule.reference("a"))
        assert all("biz_loc" not in c.to_sql() for c in conjuncts)

    def test_set_reference_keeps_everything(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B) WHERE B.reader = 'rx' AND B.rtime - A.rtime < 300
            ACTION DELETE A""")
        conjuncts = correlation_conjuncts(rule, rule.reference("b"))
        rendered = {c.to_sql() for c in conjuncts}
        assert "(b.reader = 'rx')" in rendered

    def test_atoms_split_across_or_gives_none(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime or A.biz_loc = 'x'")
        assert correlation_conjuncts(rule, rule.reference("a")) is None

    def test_group_inside_one_or_branch_allowed(self):
        rule = parse_rule("""
            DEFINE r1 ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (X, A, Y)
            WHERE A.is_pallet = 1 AND
                  ((X.is_pallet = 0 AND A.rtime - X.rtime < 300)
                   OR (Y.is_pallet = 0 AND Y.rtime - A.rtime < 300))
            ACTION MODIFY A.flag = 1""")
        conjuncts = correlation_conjuncts(rule, rule.reference("x"))
        assert conjuncts is not None
        rendered = {c.to_sql() for c in conjuncts}
        # The time bound is position-preserving and retained.
        assert any("300" in text for text in rendered)

    def test_unreferenced_context_gets_only_implied(self):
        rule = rule_for("(A, B)", "B.biz_loc = 'x'")
        conjuncts = correlation_conjuncts(rule, rule.reference("a"))
        assert {c.to_sql() for c in conjuncts} == {
            "(a.epc = b.epc)", "(a.rtime <= b.rtime)"}


class TestPositionPreservingEdges:
    """Observation 1 boundary shapes and the sequence-key corner cases."""

    def _check(self, rule, ref_name, conjunct_sql):
        ref = rule.reference(ref_name)
        return is_position_preserving(
            parse_expression(conjunct_sql), rule, ref)

    def test_sequence_key_equality_rejected(self):
        # X.skey = T.skey pins the context to the target's exact rtime;
        # filtering on it reorders relative positions, so it is not
        # position-preserving (only inequalities with safe bounds are).
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert not self._check(rule, "a", "a.rtime = b.rtime")

    def test_zero_bound_non_strict_allowed(self):
        # c = 0: (X.skey - T.skey) <= 0 keeps every row up to the target
        # inclusive -- contiguous, hence preserving.
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert self._check(rule, "a", "a.rtime - b.rtime <= 0")

    def test_zero_bound_strict_allowed(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert self._check(rule, "a", "a.rtime - b.rtime < 0")

    def test_negative_upper_bound_rejected(self):
        # "X at least 60s before T" cuts a gap next to the target.
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert not self._check(rule, "a", "a.rtime - b.rtime < -60")

    def test_positive_lower_bound_rejected(self):
        # Mirror image on the after side: "X at least 60s after T".
        rule = rule_for("(A, B)", "B.rtime - A.rtime < 300", "DELETE A")
        assert not self._check(rule, "b", "b.rtime - a.rtime > 60")

    def test_negative_lower_bound_allowed(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert self._check(rule, "a", "a.rtime - b.rtime > -300")

    def test_scaled_coefficient_rejected(self):
        # Only unit-coefficient skey differences are contiguous windows.
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert not self._check(rule, "a", "a.rtime + a.rtime < b.rtime")

    def test_constant_only_comparison_rejected(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert not self._check(rule, "a", "a.rtime < 100")

    def test_cluster_key_inequality_rejected(self):
        rule = rule_for("(A, B)", "A.rtime < B.rtime")
        assert not self._check(rule, "a", "a.epc != b.epc")


class TestSetReferenceEdges:
    """`*` references skip Observation 1 filtering entirely."""

    def test_trailing_set_keeps_local_predicates(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B) WHERE B.biz_loc != A.biz_loc
                         AND B.rtime - A.rtime < 600
            ACTION DELETE A""")
        conjuncts = correlation_conjuncts(rule, rule.reference("b"))
        rendered = {c.to_sql() for c in conjuncts}
        # The non-position-preserving location atom survives for sets.
        assert any("biz_loc" in text for text in rendered)
        # Implied pattern-side direction: B is after the target A.
        assert "(b.rtime >= a.rtime)" in rendered

    def test_leading_set_direction(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (*A, B) WHERE B.rtime - A.rtime < 600
            ACTION DELETE B""")
        conjuncts = correlation_conjuncts(rule, rule.reference("a"))
        rendered = {c.to_sql() for c in conjuncts}
        assert "(a.rtime <= b.rtime)" in rendered
        assert "(a.epc = b.epc)" in rendered

    def test_min_matches_does_not_change_correlation(self):
        counted = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B{3}) WHERE B.rtime - A.rtime < 600
            ACTION DELETE A""")
        plain = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B) WHERE B.rtime - A.rtime < 600
            ACTION DELETE A""")
        counted_sql = {c.to_sql() for c in correlation_conjuncts(
            counted, counted.reference("b"))}
        plain_sql = {c.to_sql() for c in correlation_conjuncts(
            plain, plain.reference("b"))}
        assert counted_sql == plain_sql

    def test_set_atoms_split_across_or_gives_none(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B) WHERE B.rtime - A.rtime < 600
                          OR B.biz_loc = 'x'
            ACTION DELETE A""")
        assert correlation_conjuncts(rule, rule.reference("b")) is None
