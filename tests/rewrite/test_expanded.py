"""Figure-4 analysis tests: context conditions, ec assembly, residuals."""

from repro.minidb.sqlparse import parse_expression
from repro.rewrite.expanded import analyze_expanded, analyze_rule
from repro.sqlts import parse_rule

READS_COLUMNS = {"epc", "rtime", "reader", "biz_loc", "biz_step"}

READER = parse_rule("""
    DEFINE reader_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
    AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 600
    ACTION DELETE A""")

DUPLICATE = parse_rule("""
    DEFINE duplicate_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 300
    ACTION DELETE B""")

CYCLE = parse_rule("""
    DEFINE cycle_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
    ACTION DELETE B""")

REPLACING = parse_rule("""
    DEFINE replacing_rule ON caser CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B) WHERE A.biz_loc = 'l2' AND B.biz_loc = 'la'
      AND B.rtime - A.rtime < 1200
    ACTION MODIFY A.biz_loc = 'l1'""")


def s(*texts):
    return [parse_expression(text) for text in texts]


class TestPerRule:
    def test_reader_rule_upper_query(self):
        analysis = analyze_rule(READER, s("rtime <= 1000"), READS_COLUMNS)
        assert analysis.feasible
        rendered = {c.to_sql() for c in analysis.context_conditions["b"]}
        assert "(rtime < 1600)" in rendered
        assert "(reader = 'readerX')" in rendered

    def test_duplicate_rule_upper_query(self):
        analysis = analyze_rule(DUPLICATE, s("rtime <= 1000"), READS_COLUMNS)
        assert {c.to_sql() for c in analysis.context_conditions["a"]} \
            == {"(rtime <= 1000)"}

    def test_duplicate_rule_lower_query(self):
        analysis = analyze_rule(DUPLICATE, s("rtime >= 1000"), READS_COLUMNS)
        assert "(rtime > 700)" in {
            c.to_sql() for c in analysis.context_conditions["a"]}

    def test_cycle_rule_infeasible_both_directions(self):
        for predicate in ("rtime <= 1000", "rtime >= 1000"):
            analysis = analyze_rule(CYCLE, s(predicate), READS_COLUMNS)
            assert not analysis.feasible

    def test_replacing_rule_matches_table1(self):
        analysis = analyze_rule(REPLACING, s("rtime <= 1000"), READS_COLUMNS)
        assert {c.to_sql() for c in analysis.context_conditions["b"]} \
            == {"(rtime < 2200)"}

    def test_rule_created_columns_blocked(self):
        r2 = parse_rule("""
            DEFINE r2 ON caser CLUSTER BY epc SEQUENCE BY rtime
            AS (A, *B) WHERE A.is_pallet = 0 OR
                (A.has_case_nearby = 0 AND B.has_case_nearby = 1)
            ACTION KEEP A""")
        upper = analyze_rule(r2, s("rtime <= 1000"), READS_COLUMNS)
        assert not upper.feasible  # B unbounded above; flag not in R
        lower = analyze_rule(r2, s("rtime >= 1000"), READS_COLUMNS)
        assert lower.feasible
        assert {c.to_sql() for c in lower.context_conditions["b"]} \
            == {"(rtime >= 1000)"}

    def test_no_context_references_is_trivially_feasible(self):
        solo = parse_rule("""
            DEFINE solo ON caser CLUSTER BY epc SEQUENCE BY rtime
            AS (A) WHERE A.biz_loc = 'bad' ACTION DELETE A""")
        analysis = analyze_rule(solo, s("rtime <= 10"), READS_COLUMNS)
        assert analysis.feasible
        assert analysis.context_conditions == {}


class TestAssembly:
    def test_single_rule_ec_factored_bound(self):
        analysis = analyze_expanded([READER], s("rtime <= 1000"),
                                    READS_COLUMNS)
        assert analysis.feasible
        top = [c.to_sql() for c in analysis.ec_conjuncts]
        # A weaker top-level rtime bound lets the planner use the index.
        assert top[0] == "(rtime < 1600)"
        assert any(" OR " in text for text in top)

    def test_multi_rule_or_of_contexts(self):
        analysis = analyze_expanded([READER, DUPLICATE],
                                    s("rtime <= 1000"), READS_COLUMNS)
        assert analysis.feasible
        assert analysis.cc is not None
        assert analysis.cc.to_sql().count("OR") >= 1

    def test_any_infeasible_rule_blocks_expanded(self):
        analysis = analyze_expanded([READER, CYCLE],
                                    s("rtime <= 1000"), READS_COLUMNS)
        assert not analysis.feasible
        assert analysis.ec is None

    def test_residual_keeps_uncovered_conjuncts(self):
        analysis = analyze_expanded([READER], s("rtime <= 1000",
                                                "biz_step = 's9'"),
                                    READS_COLUMNS)
        rendered = {c.to_sql() for c in analysis.residual}
        assert "(rtime <= 1000)" in rendered
        assert "(biz_step = 's9')" in rendered

    def test_residual_drops_covered_unmodified_conjunct(self):
        # The duplicate rule derives exactly the query bound, so it is
        # covered by every context disjunct and can be dropped from s'.
        analysis = analyze_expanded([DUPLICATE], s("rtime <= 1000"),
                                    READS_COLUMNS)
        assert analysis.residual == []

    def test_residual_kept_when_rule_modifies_column(self):
        analysis = analyze_expanded(
            [REPLACING], s("rtime <= 1000", "biz_loc = 'l1'"),
            READS_COLUMNS)
        rendered = {c.to_sql() for c in analysis.residual}
        assert "(biz_loc = 'l1')" in rendered

    def test_no_rules_degenerates_to_s(self):
        analysis = analyze_expanded([], s("rtime <= 1000"), READS_COLUMNS)
        assert analysis.feasible
        assert [c.to_sql() for c in analysis.ec_conjuncts] \
            == ["(rtime <= 1000)"]

    def test_subquery_in_s_excluded_from_ec_or(self):
        analysis = analyze_expanded(
            [READER], s("rtime <= 1000", "epc in (select e from x)"),
            READS_COLUMNS)
        assert analysis.feasible
        for conjunct in analysis.ec_conjuncts:
            assert "SELECT" not in conjunct.to_sql().split("OR")[0] \
                or " OR " not in conjunct.to_sql()
