"""Region-cache patching: decisions, splice identity, determinism.

An append to the reads table no longer discards warm cleansing regions:
the cache consults the table's delta log and re-cleanses only the dirty
cluster-key sequences, splicing them over the cached clean ones. These
tests pin the patch-vs-invalidate decision tree (NULL cluster keys,
MODIFY-ed cluster keys, threshold overruns, truncated history) and the
headline guarantee: the patched region and query results are
byte-identical to a cold full recompute, across the workers × batch
determinism matrix.
"""

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.plan import shard
from repro.minidb.sqlparse import parse_expression
from repro.minidb.table import _DELTA_LOG_LIMIT
from repro.minidb.types import sort_key
from repro.rewrite import DeferredCleansingEngine
from repro.rewrite.cache import CacheOptions, CleansingRegionCache
from repro.sqlts import RuleRegistry

SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
)

RULES = {
    "duplicate": """
        DEFINE duplicate ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 50
        ACTION DELETE B""",
    "reader": """
        DEFINE reader ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B) WHERE B.reader = 'rx' AND B.rtime - A.rtime < 60
        ACTION DELETE A""",
    "retag": """
        DEFINE retag ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 40
        ACTION MODIFY B.epc = 'retagged'""",
}


def base_rows(epcs=12, per_epc=8):
    return [(f"e{e:02d}", e * 7 + t * 25,
             "rx" if (e + t) % 5 == 0 else f"r{t % 3}",
             ["l1", "l2", "la", "lb"][(e + t) % 4])
            for e in range(epcs) for t in range(per_epc)]


def make_engines(rows, rule_names=("reader", "duplicate"), **cache_kwargs):
    db = Database()
    db.create_table("r", SCHEMA)
    db.load("r", rows)
    db.create_index("r", "rtime")
    registry = RuleRegistry()
    for name in rule_names:
        registry.define(RULES[name])
    cached = DeferredCleansingEngine(db, registry,
                                     cache=CacheOptions(**cache_kwargs))
    plain = DeferredCleansingEngine(db, registry)
    return db, cached, plain


SQL = "select epc, rtime, reader, biz_loc from r where rtime <= 250"


def only_entry(engine):
    (entry,) = engine.region_cache._entries.values()
    return entry


class TestPatchDecision:
    def test_small_append_patches_and_recleans_only_dirty(self):
        db, cached, plain = make_engines(base_rows())
        cached.execute(SQL)
        db.append("r", [("e00", 55, "r0", "l1"),    # existing sequence
                        ("e99", 60, "r1", "l2")])   # brand-new sequence
        result, metrics, _ = cached.execute_with_metrics(SQL)
        assert sorted(result.rows) == sorted(plain.execute(SQL).rows)
        assert metrics.cache_patches == 1
        assert metrics.sequences_recleaned == 2  # exactly the dirty ones
        assert metrics.delta_epochs_applied == 1
        assert cached.region_cache.invalidations == 0

    def test_null_cluster_key_append_invalidates(self):
        db, cached, plain = make_engines(base_rows())
        cached.execute(SQL)
        db.append("r", [(None, 55, "r0", "l1")])

        def canon(rows):
            return sorted(rows, key=lambda row: tuple(
                sort_key(value) for value in row))

        assert canon(cached.execute(SQL).rows) == \
            canon(plain.execute(SQL).rows)
        assert cached.region_cache.patches == 0
        assert cached.region_cache.invalidations == 1
        assert cached.region_cache.stores == 2  # re-materialized

    def test_modified_cluster_key_invalidates(self):
        db, cached, plain = make_engines(base_rows(),
                                         rule_names=("retag",))
        cached.execute(SQL)
        assert only_entry(cached).cluster_key_modified
        db.append("r", [("e00", 55, "r0", "l1")])
        assert sorted(cached.execute(SQL).rows) == \
            sorted(plain.execute(SQL).rows)
        assert cached.region_cache.patches == 0
        assert cached.region_cache.invalidations == 1

    def test_too_many_dirty_keys_invalidates(self):
        db, cached, plain = make_engines(base_rows(), max_patch_keys=2)
        cached.execute(SQL)
        db.append("r", [(f"n{i}", 60 + i, "r0", "l1") for i in range(3)])
        assert sorted(cached.execute(SQL).rows) == \
            sorted(plain.execute(SQL).rows)
        assert cached.region_cache.patches == 0
        assert cached.region_cache.invalidations == 1

    def test_truncated_delta_history_invalidates(self):
        db, cached, plain = make_engines(base_rows())
        cached.execute(SQL)
        table = db.table("r")
        for i in range(_DELTA_LOG_LIMIT + 1):
            table.insert((f"e{i % 3:02d}", 1000 + i, "r0", "l1"))
        db.analyze("r")
        assert sorted(cached.execute(SQL).rows) == \
            sorted(plain.execute(SQL).rows)
        assert cached.region_cache.patches == 0
        assert cached.region_cache.invalidations == 1

    def test_patch_recomputes_under_entry_ec_not_probe_ec(self):
        # Warm a wide region, append, then probe with a narrower window:
        # the patch must re-cleanse the dirty sequence under the wide ec,
        # or the later wide probe would see a half-narrow region.
        wide = "select epc, rtime, reader, biz_loc from r where rtime <= 250"
        narrow = "select epc, rtime, reader, biz_loc from r where rtime <= 90"
        db, cached, plain = make_engines(base_rows())
        cached.execute(wide)
        db.append("r", [("e00", 55, "r0", "l1"), ("e00", 200, "r1", "l2")])
        assert sorted(cached.execute(narrow).rows) == \
            sorted(plain.execute(narrow).rows)
        assert cached.region_cache.patches == 1
        assert sorted(cached.execute(wide).rows) == \
            sorted(plain.execute(wide).rows)
        assert cached.region_cache.stores == 1  # never re-materialized

    def test_schema_only_staleness_stays_warm(self):
        # An index creation bumps the schema epoch but appends no rows:
        # staleness is keyed on the *data* epoch, so the entry is not
        # even considered stale — it serves warm with zero patching and
        # zero re-cleansing.
        db, cached, plain = make_engines(base_rows())
        cached.execute(SQL)
        db.create_index("r", "biz_loc")
        result, metrics, _ = cached.execute_with_metrics(SQL)
        assert sorted(result.rows) == sorted(plain.execute(SQL).rows)
        assert metrics.cache_patches == 0
        assert metrics.sequences_recleaned == 0
        assert cached.region_cache.invalidations == 0
        assert cached.region_cache.stores == 1  # never re-materialized


class TestDirectCacheLookup:
    """Unit-level: lookup() with and without a patcher."""

    def _db_and_cache(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", base_rows())
        cache = CleansingRegionCache(db)
        table = db.table("r")
        ec = (parse_expression("rtime <= 250"),)
        rows = sorted(
            (row for row in table.rows if row[1] <= 250),
            key=lambda row: (row[0], row[1]))
        cache.store(table, ("k",), ec, rows, cluster_key="epc")
        return db, cache, table, ec

    def test_without_patcher_stale_entry_drops(self):
        db, cache, table, ec = self._db_and_cache()
        table.append_rows([("e00", 55, "r0", "l1")])
        assert cache.lookup(table, ("k",), ec) is None
        assert cache.invalidations == 1

    def test_patcher_receives_dirty_values_and_entry(self):
        db, cache, table, ec = self._db_and_cache()
        table.append_rows([("e03", 55, "r0", "l1"),
                           ("e01", 60, "r0", "l1")])
        calls = []

        def patcher(entry, dirty_values):
            calls.append((entry.cluster_key, list(dirty_values)))
            return [row for row in table.rows
                    if row[0] in dirty_values and row[1] <= 250]

        entry = cache.lookup(table, ("k",), ec, patcher=patcher)
        assert entry is not None
        assert calls == [("epc", ["e01", "e03"])]  # sorted dirty keys
        assert cache.patches == 1 and cache.sequences_recleaned == 2

    def test_patched_rows_replace_dirty_runs_in_key_order(self):
        db, cache, table, ec = self._db_and_cache()
        table.append_rows([("e03", 41, "r9", "l9")])

        def patcher(entry, dirty_values):
            return [row for row in sorted(table.rows,
                                          key=lambda r: (r[0], r[1]))
                    if row[0] in dirty_values and row[1] <= 250]

        entry = cache.lookup(table, ("k",), ec, patcher=patcher)
        rows = entry.table.rows
        expected = sorted(
            (row for row in table.rows if row[1] <= 250),
            key=lambda row: (row[0], row[1]))
        assert rows == expected  # splice == full recompute, key order kept

    def test_unsorted_region_declines_patch(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", base_rows())
        cache = CleansingRegionCache(db)
        table = db.table("r")
        ec = (parse_expression("rtime <= 250"),)
        rows = [row for row in table.rows if row[1] <= 250]
        rows.reverse()  # NOT sorted by cluster key: no contiguous runs
        cache.store(table, ("k",), ec, rows, cluster_key="epc")
        table.append_rows([("e00", 55, "r0", "l1")])
        assert cache.lookup(table, ("k",), ec,
                            patcher=lambda e, d: []) is None
        assert cache.patches == 0 and cache.invalidations == 1


@pytest.mark.parametrize("workers", [0, 2])
@pytest.mark.parametrize("batch", [0, 7])
def test_patched_region_byte_identical_to_cold(monkeypatch, workers, batch):
    """Determinism matrix: incremental == full recompute, byte for byte.

    Two engines over the same data history — one queries between appends
    (so its region is patched twice), one only queries at the end (cold
    full cleanse). The materialized regions and the final result rows
    must be identical under every workers × batch combination.
    """
    monkeypatch.setenv("REPRO_BATCH_SIZE", str(batch))
    if workers:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", 64)
    else:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)

    prefix = base_rows(epcs=30, per_epc=10)
    chunks = [
        [("e00", 53, "r0", "l1"), ("x01", 60, "rx", "l2")],
        [("x01", 95, "r1", "la"), ("e07", 101, "r2", "lb")],
    ]
    sql = "select epc, rtime, reader, biz_loc from r where rtime <= 400"

    db_inc, incremental, _ = make_engines(prefix)
    try:
        incremental.execute(sql)
        for chunk in chunks:
            db_inc.append("r", chunk)
            incremental.execute(sql)
        patched_region = list(only_entry(incremental).table.rows)
        patched_rows = incremental.execute(sql).rows
        assert incremental.region_cache.patches == len(chunks)
        assert incremental.region_cache.stores == 1
    finally:
        db_inc.close()

    db_cold, cold, _ = make_engines(prefix)
    try:
        for chunk in chunks:
            db_cold.append("r", chunk)
        cold_rows = cold.execute(sql).rows
        cold_region = list(only_entry(cold).table.rows)
    finally:
        db_cold.close()

    assert patched_region == cold_region
    assert patched_rows == cold_rows
