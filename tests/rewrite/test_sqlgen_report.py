"""Tests for rewritten-SQL emission and the cleansing impact report."""

import pytest

from repro.errors import RewriteError
from repro.rewrite import DeferredCleansingEngine
from repro.rewrite.report import cleansing_report
from repro.rewrite.sqlgen import rewritten_sql
from repro.sqlts import RuleRegistry
from tests.conftest import make_reads_db

READER = """
DEFINE rdr ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, *B) WHERE B.reader = 'rx' AND B.rtime - A.rtime < 10 mins
ACTION DELETE A
"""

DUPLICATE = """
DEFINE dup ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
ACTION DELETE B
"""

REPLACING = """
DEFINE rep ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B) WHERE A.biz_loc = 'l2' AND B.biz_loc = 'la'
  AND B.rtime - A.rtime < 20 mins
ACTION MODIFY A.biz_loc = 'l1'
"""

ROWS = [
    ("e1", 0, "r0", "l2", "s"),
    ("e1", 60, "r0", "la", "s"),
    ("e1", 120, "r0", "la", "s"),      # duplicate of previous
    ("e1", 900, "r0", "lb", "s"),
    ("e2", 0, "r0", "lc", "s"),
    ("e2", 100, "rx", "ld", "s"),      # deletes e2@0 via reader rule
    ("e3", 0, "r0", "le", "s"),
]


@pytest.fixture
def setup():
    db = make_reads_db(ROWS)
    registry = RuleRegistry(db)
    for text in (READER, DUPLICATE, REPLACING):
        registry.define(text)
    return db, registry


class TestRewrittenSql:
    @pytest.mark.parametrize("strategy", ["naive", "expanded", "joinback"])
    def test_emitted_sql_matches_engine(self, setup, strategy):
        db, registry = setup
        engine = DeferredCleansingEngine(db, registry)
        query = "select epc, biz_loc from r where rtime <= 400"
        sql = rewritten_sql(db, registry, query, strategy)
        via_sql = db.execute(sql).as_set()
        via_engine = engine.execute(query, strategies={strategy}).as_set()
        assert via_sql == via_engine

    def test_emitted_sql_is_self_contained(self, setup):
        db, registry = setup
        sql = rewritten_sql(db, registry,
                            "select epc from r where rtime <= 400",
                            "expanded")
        assert "{input}" not in sql
        assert sql.count("OVER") >= 3  # one window block per rule

    def test_query_without_rules_passes_through(self, setup):
        db, registry = setup
        db.create_table("clean", db.table("r").schema)
        sql = rewritten_sql(db, registry, "select epc from clean")
        assert sql.strip().lower().startswith("select epc from clean")

    def test_expanded_infeasible_raises(self, setup):
        db, registry = setup
        registry.define("""
            DEFINE cyc ON r CLUSTER BY epc SEQUENCE BY rtime
            AS (A, B, C) WHERE A.biz_loc = C.biz_loc
              AND A.biz_loc != B.biz_loc
            ACTION DELETE B""")
        with pytest.raises(RewriteError, match="infeasible"):
            rewritten_sql(db, registry,
                          "select epc from r where rtime <= 400",
                          "expanded")

    def test_unknown_strategy_rejected(self, setup):
        db, registry = setup
        with pytest.raises(RewriteError, match="unknown strategy"):
            rewritten_sql(db, registry, "select epc from r", "psychic")

    def test_join_query_emission(self, setup):
        db, registry = setup
        from repro.minidb import SqlType, TableSchema
        db.create_table("locs", TableSchema.of(
            ("gln", SqlType.VARCHAR), ("site", SqlType.VARCHAR)))
        db.load("locs", [("l1", "sA"), ("l2", "sA"), ("la", "sB"),
                         ("lb", "sB"), ("lc", "sC"), ("ld", "sC"),
                         ("le", "sC")])
        engine = DeferredCleansingEngine(db, registry)
        query = ("select r.epc, locs.site from r, locs "
                 "where r.biz_loc = locs.gln and r.rtime <= 400")
        sql = rewritten_sql(db, registry, query, "joinback")
        assert db.execute(sql).as_set() == \
            engine.execute(query, strategies={"joinback"}).as_set()


class TestCleansingReport:
    def test_stepwise_accounting(self, setup):
        db, registry = setup
        impacts = cleansing_report(db, registry, "r")
        by_name = {impact.rule_name: impact for impact in impacts}
        assert list(by_name) == ["rdr", "dup", "rep"]
        assert by_name["rdr"].rows_removed == 1   # e2@0
        assert by_name["dup"].rows_removed == 1   # e1@120
        assert by_name["rep"].rows_removed == 0
        assert by_name["rep"].rows_modified == 1  # e1@0 relocated

    def test_rows_flow_between_rules(self, setup):
        db, registry = setup
        impacts = cleansing_report(db, registry, "r")
        for previous, following in zip(impacts, impacts[1:]):
            assert following.rows_in == previous.rows_out

    def test_describe_is_readable(self, setup):
        db, registry = setup
        impacts = cleansing_report(db, registry, "r")
        text = impacts[0].describe()
        assert "rdr" in text and "removed 1" in text

    def test_report_on_generated_data_with_view_rule(self, dirty_bench):
        impacts = cleansing_report(dirty_bench.database,
                                   dirty_bench.registry, "caser")
        assert len(impacts) == 6
        by_name = {impact.rule_name: impact for impact in impacts}
        # r1 flags pallet ghosts (modifies, removes nothing).
        assert by_name["missing_rule_r1"].rows_removed == 0
        assert by_name["missing_rule_r1"].rows_modified > 0
        # r2 drops most ghost rows (keeps only compensating ones).
        assert by_name["missing_rule_r2"].rows_removed > 0
        # Every delete-style rule removed something on 20% dirty data.
        for name in ("reader_rule", "duplicate_rule", "cycle_rule"):
            assert by_name[name].rows_removed > 0, name
