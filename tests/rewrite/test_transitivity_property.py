"""Soundness property for derived context conditions (Figure 4).

``derive_context_conjuncts`` produces the condition the expanded
rewrite pushes below cleansing to fetch a rule's context rows. For the
rewrite to be correct the derived condition may only ever *widen*:
every context tuple X that genuinely participates — i.e. some target
tuple T satisfies the query condition and (X, T) jointly satisfy the
correlation conjuncts — must satisfy every derived conjunct. A derived
condition stronger than that premise would silently drop required
context rows from σ_ec(R).

The property samples random (X, T) tuple pairs and random conjunct
sets; whenever the premise holds on a pair, every derived conjunct must
evaluate true on it (completeness of the derivation is NOT asserted —
deriving nothing is always sound).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb.sqlparse import parse_expression
from repro.rewrite.transitivity import derive_context_conjuncts

COLUMNS = ("epc", "rtime", "biz_loc", "reader")

#: Row layout for bound evaluation: X's columns then T's columns.
_INDEX = {("x", name): position for position, name in enumerate(COLUMNS)}
_INDEX.update({("t", name): position + len(COLUMNS)
               for position, name in enumerate(COLUMNS)})


def _resolver(qualifier: str | None, name: str) -> int:
    # Derived conjuncts refer only to the context reference; treat
    # unqualified references as context-side.
    return _INDEX[(qualifier or "x", name)]


def _holds(conjunct_sql: str, row: tuple) -> bool:
    value = parse_expression(conjunct_sql).bind(_resolver)(row)
    return value is True


ROW = st.tuples(
    st.sampled_from(["e1", "e2"]),
    st.integers(0, 500),
    st.sampled_from(["l1", "l2", "la"]),
    st.sampled_from(["r0", "r1", "rx"]),
)

CORRELATION = st.lists(st.sampled_from([
    "x.epc = t.epc",
    "x.rtime <= t.rtime",
    "t.rtime - x.rtime < 120",
    "t.rtime - x.rtime <= 60",
    "x.rtime - t.rtime > -300",
    "x.biz_loc = t.biz_loc",
    "x.reader = 'rx'",
]), min_size=1, max_size=4, unique=True)

QUERY = st.lists(st.sampled_from([
    "t.rtime <= 400",
    "t.rtime <= 250",
    "t.rtime >= 100",
    "t.rtime > 50",
    "t.epc = 'e1'",
    "t.biz_loc = 'l1'",
    "t.reader != 'r0'",
]), min_size=0, max_size=3, unique=True)


@settings(max_examples=300, deadline=None)
@given(correlation=CORRELATION, query=QUERY,
       pairs=st.lists(st.tuples(ROW, ROW), min_size=1, max_size=8))
def test_derived_conjuncts_never_stronger_than_premise(
        correlation, query, pairs) -> None:
    derived = derive_context_conjuncts(
        [parse_expression(text) for text in correlation],
        [parse_expression(text) for text in query],
        "x", "t")
    derived_sql = [conjunct.to_sql() for conjunct in derived]

    for x_row, t_row in pairs:
        row = x_row + t_row
        premise = all(_holds(text, row) for text in correlation) \
            and all(_holds(text, row) for text in query)
        if not premise:
            continue
        for conjunct_sql in derived_sql:
            assert _holds(conjunct_sql, row), (
                f"derived conjunct {conjunct_sql} is stronger than the "
                f"premise: violated by X={x_row}, T={t_row} under "
                f"correlation={correlation}, query={query}")


@settings(max_examples=100, deadline=None)
@given(query=QUERY, x_row=ROW)
def test_derived_refers_only_to_context(query, x_row) -> None:
    """Every derived conjunct must be evaluable on the context tuple
    alone — no residual target references."""
    correlation = ["x.epc = t.epc", "x.rtime <= t.rtime",
                   "t.rtime - x.rtime < 120"]
    derived = derive_context_conjuncts(
        [parse_expression(text) for text in correlation],
        [parse_expression(text) for text in query],
        "x", "t")
    for conjunct in derived:
        qualifiers = {ref.qualifier
                      for ref in conjunct.referenced_columns()}
        assert qualifiers <= {"x", None}, conjunct.to_sql()
