"""Property test: every rewrite strategy computes Q[C1..Cn] exactly.

Theorem 1 of the paper states the expanded rewrite preserves query
semantics; the join-back rewrite is argued correct in §5.3. This test
checks both empirically: for random reads tables, random subsets of the
rule archetypes (delete/keep/modify, singleton and set references,
bounded and unbounded), and random query predicates, the expanded and
join-back rewrites must return exactly the rows of the naive rewrite
(cleanse everything, then query).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RewriteError
from repro.minidb import Database, SqlType, TableSchema
from repro.rewrite import DeferredCleansingEngine
from repro.sqlts import RuleRegistry

SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
)

RULES = {
    "duplicate": """
        DEFINE duplicate ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 50
        ACTION DELETE B""",
    "duplicate_unbounded": """
        DEFINE duplicate_unbounded ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (E, F) WHERE E.biz_loc = F.biz_loc
        ACTION DELETE F""",
    "reader": """
        DEFINE reader ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B) WHERE B.reader = 'rx' AND B.rtime - A.rtime < 60
        ACTION DELETE A""",
    "cycle": """
        DEFINE cycle ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
        ACTION DELETE B""",
    "replacing": """
        DEFINE replacing ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, B) WHERE A.biz_loc = 'l2' AND B.biz_loc = 'la'
          AND B.rtime - A.rtime < 80
        ACTION MODIFY A.biz_loc = 'l1'""",
    "keeper": """
        DEFINE keeper ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B) WHERE B.rtime - A.rtime < 200
        ACTION KEEP A""",
}

ROW = st.tuples(
    st.sampled_from(["e1", "e2", "e3"]),
    st.integers(0, 400),
    st.sampled_from(["r0", "r1", "rx"]),
    st.sampled_from(["l1", "l2", "la", "lb"]),
)


def _unique_sequence_times(rows):
    seen = set()
    out = []
    for row in rows:
        if (row[0], row[1]) in seen:
            continue
        seen.add((row[0], row[1]))
        out.append(row)
    return out


PREDICATES = st.sampled_from([
    "rtime <= {t}",
    "rtime >= {t}",
    "rtime >= {t} and rtime <= {t2}",
    "rtime <= {t} and reader != 'r1'",
    "biz_loc = 'l1'",
    "",
])


@settings(max_examples=80, deadline=None)
@given(rows=st.lists(ROW, min_size=0, max_size=35)
       .map(_unique_sequence_times),
       rule_names=st.lists(st.sampled_from(sorted(RULES)), min_size=1,
                           max_size=3, unique=True),
       predicate=PREDICATES,
       t=st.integers(0, 400), t2=st.integers(0, 400))
def test_all_strategies_agree_with_naive(rows, rule_names, predicate, t, t2):
    db = Database()
    db.create_table("r", SCHEMA)
    db.load("r", rows)
    db.create_index("r", "rtime")
    registry = RuleRegistry()
    for name in rule_names:
        registry.define(RULES[name])
    engine = DeferredCleansingEngine(db, registry)
    where = f" where {predicate.format(t=t, t2=max(t, t2))}" if predicate \
        else ""
    sql = f"select epc, rtime, reader, biz_loc from r{where}"

    baseline = sorted(engine.execute(sql, strategies={"naive"}).rows)
    joinback = sorted(engine.execute(sql, strategies={"joinback"}).rows)
    assert joinback == baseline
    try:
        expanded = sorted(engine.execute(sql, strategies={"expanded"}).rows)
    except RewriteError:
        expanded = None  # infeasible: nothing to compare
    if expanded is not None:
        assert expanded == baseline
    # The cost-based choice must of course also be correct.
    chosen = sorted(engine.execute(sql).rows)
    assert chosen == baseline


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(ROW, min_size=0, max_size=25)
       .map(_unique_sequence_times),
       t=st.integers(0, 400))
def test_join_query_strategies_agree(rows, t):
    """Same property with a dimension join on the reads table."""
    db = Database()
    db.create_table("r", SCHEMA)
    db.load("r", rows)
    db.create_index("r", "rtime")
    db.create_table("locdim", TableSchema.of(
        ("gln", SqlType.VARCHAR), ("site", SqlType.VARCHAR)))
    db.load("locdim", [("l1", "sA"), ("l2", "sA"), ("la", "sB"),
                       ("lb", "sB")])
    registry = RuleRegistry()
    registry.define(RULES["reader"])
    registry.define(RULES["duplicate"])
    engine = DeferredCleansingEngine(db, registry)
    sql = (f"select r.epc, r.rtime, locdim.site from r, locdim "
           f"where r.biz_loc = locdim.gln and locdim.site = 'sA' "
           f"and r.rtime <= {t}")
    baseline = sorted(engine.execute(sql, strategies={"naive"}).rows)
    for strategy in ("expanded", "joinback"):
        got = sorted(engine.execute(sql, strategies={strategy}).rows)
        assert got == baseline, strategy
    assert sorted(engine.execute(sql).rows) == baseline
