"""Linear-form normalization tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.linear import LinearForm, linearize, normalize_comparison
from repro.minidb.expressions import ColumnRef, Literal, UnaryOp
from repro.minidb.sqlparse import parse_expression


A = ColumnRef("rtime", "a")
B = ColumnRef("rtime", "b")


class TestLinearize:
    def test_literal(self):
        form = linearize(Literal(5))
        assert form.is_constant and form.constant == 5

    def test_column(self):
        form = linearize(A)
        assert form.coeffs == {A: 1.0} and form.constant == 0

    def test_difference(self):
        form = linearize(parse_expression("b.rtime - a.rtime"))
        assert form.coeffs == {B: 1.0, A: -1.0}

    def test_nested_arithmetic(self):
        form = linearize(parse_expression("2 * (a.rtime + 3) - a.rtime"))
        assert form.coeffs == {A: 1.0}
        assert form.constant == 6

    def test_division_by_constant(self):
        form = linearize(parse_expression("a.rtime / 2"))
        assert form.coeffs == {A: 0.5}

    def test_negation(self):
        form = linearize(UnaryOp("-", A))
        assert form.coeffs == {A: -1.0}

    def test_nonlinear_returns_none(self):
        assert linearize(parse_expression("a.rtime * b.rtime")) is None
        assert linearize(parse_expression("a.rtime / b.rtime")) is None
        assert linearize(Literal("text")) is None

    def test_cancellation_removes_zero_coeffs(self):
        form = linearize(parse_expression("a.rtime - a.rtime"))
        assert form.is_constant

    def test_single_reference(self):
        assert linearize(parse_expression("a.rtime + 1")) \
            .single_reference() == A
        assert linearize(parse_expression("2 * a.rtime")) \
            .single_reference() is None


class TestNormalizeComparison:
    def test_difference_bound(self):
        result = normalize_comparison(
            parse_expression("b.rtime - a.rtime < 300"))
        assert result is not None
        form, op = result
        assert op == "<"
        assert form.coeffs == {B: 1.0, A: -1.0}
        assert form.constant == -300

    def test_moves_terms_across_sides(self):
        result = normalize_comparison(
            parse_expression("b.rtime < a.rtime + 300"))
        form, op = result
        assert form.coeffs == {B: 1.0, A: -1.0}
        assert form.constant == -300

    def test_non_comparison_returns_none(self):
        assert normalize_comparison(parse_expression("a.rtime + 1")) is None
        assert normalize_comparison(
            parse_expression("a.x = 'text' and b.x = 'y'")) is None

    def test_nonlinear_side_returns_none(self):
        assert normalize_comparison(
            parse_expression("a.rtime * b.rtime < 5")) is None


@given(st.integers(-100, 100), st.integers(-100, 100),
       st.integers(-100, 100), st.integers(-100, 100))
def test_linearize_agrees_with_evaluation(x, y, c1, c2):
    """linearize(e) evaluated as a form equals evaluating e directly."""
    expr = parse_expression(f"2 * (a.rtime - {c1}) - (b.rtime + {c2})")
    form = linearize(expr)
    computed = sum(coeff * {A: x, B: y}[ref]
                   for ref, coeff in form.coeffs.items()) + form.constant
    expected = 2 * (x - c1) - (y + c2)
    assert computed == expected


class TestFormAlgebra:
    def test_add_and_scale(self):
        left = LinearForm({A: 1.0}, 2.0)
        right = LinearForm({A: 1.0, B: -1.0}, 1.0)
        total = left.add(right)
        assert total.coeffs == {A: 2.0, B: -1.0}
        assert total.constant == 3.0
        scaled = total.scale(0.5)
        assert scaled.coeffs == {A: 1.0, B: -0.5}

    def test_add_cancels(self):
        left = LinearForm({A: 1.0})
        right = LinearForm({A: 1.0})
        assert left.add(right, sign=-1.0).is_constant
