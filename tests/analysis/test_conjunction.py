"""Conjunction-structure analysis tests."""

from repro.analysis.conjunction import atoms_of, find_conjoined_group
from repro.minidb.sqlparse import parse_expression


def group_for(condition_sql, predicate):
    condition = parse_expression(condition_sql)
    atoms = [atom for atom in atoms_of(condition) if predicate(atom)]
    return condition, atoms, find_conjoined_group(
        condition, {id(atom) for atom in atoms})


def mentions(name):
    return lambda atom: any(ref.qualifier == name
                            for ref in atom.referenced_columns())


class TestAtoms:
    def test_flat_conjunction(self):
        atoms = atoms_of(parse_expression("a.x = 1 and b.y = 2 and c.z = 3"))
        assert len(atoms) == 3

    def test_or_branches(self):
        atoms = atoms_of(parse_expression("a.x = 1 or (b.y = 2 and c.z = 3)"))
        assert len(atoms) == 3

    def test_single_atom(self):
        assert len(atoms_of(parse_expression("a.x = 1"))) == 1


class TestConjoinedGroup:
    def test_top_level_conjuncts(self):
        _, atoms, lca = group_for(
            "b.r = 'x' and b.t - a.t < 5 and a.l = 'y'", mentions("b"))
        assert len(atoms) == 2
        assert lca is not None

    def test_group_inside_one_or_branch(self):
        # The missing rule's r1 shape.
        _, atoms, lca = group_for(
            "a.p = 1 and ((x.p = 0 and a.l = x.l) or (y.p = 0 and a.l = y.l))",
            mentions("x"))
        assert len(atoms) == 2
        assert lca is not None

    def test_atoms_split_across_or_rejected(self):
        _, _, lca = group_for("b.x = 1 or b.y = 2", mentions("b"))
        assert lca is None

    def test_atom_below_or_within_lca_rejected(self):
        _, _, lca = group_for(
            "b.x = 1 and (b.y = 2 or a.z = 3)", mentions("b"))
        assert lca is None

    def test_siblings_allowed_beside_group(self):
        _, _, lca = group_for(
            "a.z = 3 and b.x = 1 and b.y = 2", mentions("b"))
        assert lca is not None

    def test_no_atoms(self):
        condition = parse_expression("a.x = 1")
        assert find_conjoined_group(condition, set()) is None

    def test_single_atom_is_its_own_group(self):
        _, atoms, lca = group_for(
            "a.p = 0 or (a.h = 0 and b.h = 1)", mentions("b"))
        assert len(atoms) == 1
        assert lca is atoms[0]
