"""The serving layer: protocol, concurrency, backpressure, drain.

Everything runs against a loopback server hosted on a background
event-loop thread (``serve_loopback``), driven by the synchronous
:class:`ServerClient` — the same path the fuzz oracle's ``served``
label and the serving benchmark use.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.server import (ProcessExecutor, ServerBusy, ServerClient,
                          ServerError, ThreadExecutor, serve_loopback)
from repro.server import protocol

READS = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
    ("biz_step", SqlType.VARCHAR),
)

DUP_RULE = """
    DEFINE dup ON reads CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 300
    ACTION DELETE B
"""


def _rows(count: int, start: int = 0) -> list[tuple]:
    return [(f"e{i % 5}", 100 * i, f"rd{i % 3}", f"l{i % 4}", "step")
            for i in range(start, start + count)]


def make_db(rows: list[tuple] | None = None) -> Database:
    db = Database()
    db.create_table("reads", READS)
    db.load("reads", _rows(20) if rows is None else rows)
    db.create_index("reads", "rtime")
    return db


class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"id": 7, "op": "query", "sql": "select 1",
                   "values": [None, 1, 1.5, "x", True]}
        frame = protocol.encode_frame(message)
        assert protocol.decode_payload(frame[4:]) == message

    def test_oversized_frame_refused(self):
        header = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            sender = socket.create_connection(
                listener.getsockname(), timeout=5)
            receiver, _ = listener.accept()
            with sender, receiver:
                sender.sendall(header + b"x")
                with pytest.raises(protocol.ProtocolError):
                    protocol.recv_frame(receiver)
        finally:
            listener.close()

    def test_rows_from_wire_rejects_non_arrays(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.rows_from_wire({"not": "rows"})
        with pytest.raises(protocol.ProtocolError):
            protocol.rows_from_wire(["not-a-row"])


class TestRoundTrip:
    def test_hello_query_append(self):
        db = make_db()
        with serve_loopback(db) as handle:
            with ServerClient(*handle.address) as client:
                hello = client.hello()
                assert hello["server"] == "repro-minidb"
                assert "reads" in hello["tables"]
                result = client.query(
                    "select epc, rtime from reads "
                    "where rtime <= 500 order by rtime")
                assert result.rows == [(f"e{i % 5}", 100 * i)
                                       for i in range(6)]
                assert client.append("reads", _rows(5, start=20)) == 5
                total = client.query(
                    "select count(*) as n from reads").scalar()
                assert total == 25

    def test_cleansed_query_over_the_wire(self):
        rows = [("c1", 0, "r0", "dock", "s"),
                ("c1", 100, "r0", "dock", "s"),     # duplicate
                ("c1", 900, "r1", "shelf", "s"),
                ("c2", 50, "r0", "dock", "s")]
        db = make_db(rows)
        with serve_loopback(db) as handle:
            with ServerClient(*handle.address) as client:
                client.hello(rules=[DUP_RULE])
                cleansed = client.query(
                    "select count(*) as n from reads",
                    cleansed=True).scalar()
                dirty = client.query(
                    "select count(*) as n from reads").scalar()
        assert dirty == 4
        assert cleansed == 3

    def test_cleansed_without_rules_is_an_error(self):
        db = make_db()
        with serve_loopback(db) as handle:
            with ServerClient(*handle.address) as client:
                client.hello()
                with pytest.raises(ServerError) as excinfo:
                    client.query("select count(*) as n from reads",
                                 cleansed=True)
                assert excinfo.value.code == "query_error"

    def test_error_codes(self):
        db = make_db()
        with serve_loopback(db) as handle:
            with ServerClient(*handle.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query("select nope from nowhere")
                assert excinfo.value.code == "query_error"
                with pytest.raises(ServerError) as excinfo:
                    client.append("nowhere", [[1]])
                assert excinfo.value.code == "query_error"
                # Unknown op -> bad_request.
                protocol.send_frame(client._sock,
                                    {"id": 99, "op": "mystery"})
                reply = protocol.recv_frame(client._sock)
                assert reply["ok"] is False
                assert reply["error"] == "bad_request"

    def test_session_plan_cache_reuse(self, monkeypatch):
        # The per-session snapshot path (and its plan cache) is only
        # taken when the executor is not in exclusive-read mode, so pin
        # the ambient worker/storage knobs rather than inherit the CI
        # matrix (disk storage and workers>=2 both force exclusive).
        monkeypatch.setenv("REPRO_WORKERS", "0")
        monkeypatch.setenv("REPRO_STORAGE", "memory")
        db = make_db()
        sql = "select biz_loc, count(*) as n from reads group by biz_loc"
        with serve_loopback(db) as handle:
            with ServerClient(*handle.address) as client:
                client.hello()
                client.query(sql)
                client.query(sql)
                executor = handle.server.executor
                assert isinstance(executor, ThreadExecutor)
                (session,) = executor._sessions.values()
                assert session.plan_cache.hits >= 1


class TestConcurrency:
    def test_parallel_clients_mixed_load(self):
        db = make_db()
        errors: list[BaseException] = []

        def worker(handle, index: int) -> None:
            try:
                with ServerClient(*handle.address) as client:
                    client.hello()
                    for round_number in range(5):
                        client.append_with_retry(
                            "reads",
                            _rows(2, start=1000 * (index + 1)
                                  + 10 * round_number))
                        count = client.query_with_retry(
                            "select count(*) as n from reads").scalar()
                        assert count >= 20
            except BaseException as error:  # noqa: BLE001 — re-raised
                errors.append(error)

        with serve_loopback(db) as handle:
            threads = [threading.Thread(target=worker,
                                        args=(handle, index))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        total = db.execute("select count(*) as n from reads").scalar()
        assert total == 20 + 4 * 5 * 2

    def test_snapshot_reads_see_consistent_counts(self):
        """A query never observes a torn append (all-or-nothing)."""
        db = make_db(_rows(10))
        stop = threading.Event()
        bad: list[int] = []

        def reader(handle) -> None:
            with ServerClient(*handle.address) as client:
                client.hello()
                while not stop.is_set():
                    count = client.query_with_retry(
                        "select count(*) as n from reads").scalar()
                    if (count - 10) % 7 != 0:  # appends land in 7s
                        bad.append(count)

        with serve_loopback(db) as handle:
            thread = threading.Thread(target=reader, args=(handle,))
            thread.start()
            with ServerClient(*handle.address) as client:
                client.hello()
                for batch in range(8):
                    client.append_with_retry(
                        "reads", _rows(7, start=100 + 10 * batch))
            stop.set()
            thread.join(timeout=30)
        assert bad == []


class TestBackpressure:
    def test_session_depth_shed(self):
        db = make_db()
        with serve_loopback(db, session_depth=1) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            with sock:
                # Pipeline a burst without reading; the reader coroutine
                # must shed beyond depth 1 instead of queueing unboundedly.
                for request_id in range(30):
                    protocol.send_frame(sock, {
                        "id": request_id, "op": "query",
                        "sql": "select count(*) as n from reads"})
                codes = []
                for _ in range(30):
                    reply = protocol.recv_frame(sock)
                    codes.append(reply.get("error", "ok"))
            assert "session_busy" in codes
            shed = codes.count("session_busy")
            assert codes.count("ok") == 30 - shed
            for request_id, reply_code in enumerate(codes):
                if reply_code == "session_busy":
                    break
            assert handle.server.shed_count >= shed

    def test_overload_shed_and_retry(self, monkeypatch):
        original = ThreadExecutor._do_query

        def slow_query(self, session_id, sql, cleansed):
            time.sleep(0.4)
            return original(self, session_id, sql, cleansed)

        monkeypatch.setattr(ThreadExecutor, "_do_query", slow_query)
        db = make_db()
        sheds: list[ServerBusy] = []
        with serve_loopback(db, max_inflight=1) as handle:
            def occupy() -> None:
                with ServerClient(*handle.address) as client:
                    client.hello()  # admission slot taken by the query only
                    client.query("select count(*) as n from reads")

            first = threading.Thread(target=occupy)
            first.start()
            time.sleep(0.15)  # let the slow query take the only slot
            with ServerClient(*handle.address) as client:
                try:
                    client.query("select count(*) as n from reads")
                except ServerBusy as shed:
                    sheds.append(shed)
                # The polite loop eventually gets through.
                count = client.query_with_retry(
                    "select count(*) as n from reads").scalar()
                assert count == 20
            first.join(timeout=30)
        assert sheds and sheds[0].code == "overloaded"
        assert sheds[0].retry_after > 0

    def test_drain_completes_inflight_queries(self, monkeypatch):
        original = ThreadExecutor._do_query

        def slow_query(self, session_id, sql, cleansed):
            time.sleep(0.3)
            return original(self, session_id, sql, cleansed)

        monkeypatch.setattr(ThreadExecutor, "_do_query", slow_query)
        db = make_db()
        results: list[int] = []
        handle = None
        import repro.server.server as server_module

        handle = server_module.serve_in_thread(db)

        def issue() -> None:
            with ServerClient(*handle.address) as client:
                client.hello()
                results.append(client.query(
                    "select count(*) as n from reads").scalar())

        thread = threading.Thread(target=issue)
        thread.start()
        time.sleep(0.1)  # the query is now in flight
        handle.stop()    # graceful drain must let it finish
        thread.join(timeout=30)
        assert results == [20]
        # And the listener is gone afterwards.
        with pytest.raises(OSError):
            socket.create_connection(handle.address, timeout=2)


class TestProcessExecutor:
    # Fork replicas require the in-memory backend, so both tests pin
    # the storage knob rather than inherit the CI disk matrix.
    @pytest.fixture(autouse=True)
    def _memory_storage(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "memory")

    def test_round_robin_read_your_writes(self):
        db = make_db()
        with serve_loopback(db, workers=2) as handle:
            assert isinstance(handle.server.executor, ProcessExecutor)
            with ServerClient(*handle.address) as client:
                client.hello()
                client.append("reads", _rows(3, start=500))
                # Hit both replicas: every one must see the append.
                for _ in range(4):
                    count = client.query(
                        "select count(*) as n from reads").scalar()
                    assert count == 23
        # The parent database applied the append too.
        assert db.execute("select count(*) as n from reads").scalar() == 23

    def test_cleansed_queries_on_replicas(self):
        rows = [("c1", 0, "r0", "dock", "s"),
                ("c1", 100, "r0", "dock", "s"),
                ("c2", 50, "r0", "dock", "s")]
        db = make_db(rows)
        with serve_loopback(db, workers=2) as handle:
            with ServerClient(*handle.address) as client:
                client.hello(rules=[DUP_RULE])
                for _ in range(2):  # both replicas hold the session rules
                    cleansed = client.query(
                        "select count(*) as n from reads",
                        cleansed=True).scalar()
                    assert cleansed == 2
