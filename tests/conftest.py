"""Shared fixtures for the test suite.

Expensive fixtures (generated workbenches) are session-scoped; tests
must not mutate them. Small per-test databases are built from the
``reads_db`` factory fixture.
"""

from __future__ import annotations

import pytest

from repro.datagen import GeneratorConfig
from repro.minidb import Database, SqlType, TableSchema
from repro.workloads import Workbench

#: The Figure-2 reads schema used across unit tests.
READS = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
    ("biz_step", SqlType.VARCHAR),
)


def make_reads_db(rows, *, index_rtime: bool = True) -> Database:
    """A fresh database holding one reads table ``r`` with *rows*."""
    db = Database()
    db.create_table("r", READS)
    db.load("r", rows)
    if index_rtime:
        db.create_index("r", "rtime")
        db.create_index("r", "epc")
    return db


@pytest.fixture
def reads_db():
    """Factory fixture: ``reads_db(rows)`` builds a small database."""
    return make_reads_db


#: A tiny but structurally complete topology for generated-data tests.
SMALL_CONFIG = dict(
    scale=6,
    stores=10,
    warehouses=5,
    distribution_centers=3,
    locations_per_site=10,
    products=50,
    manufacturers=10,
)


@pytest.fixture(scope="session")
def clean_bench() -> Workbench:
    """A generated workbench without anomalies (read-only!)."""
    return Workbench.create(GeneratorConfig(anomaly_percent=0.0,
                                            **SMALL_CONFIG))


@pytest.fixture(scope="session")
def dirty_bench() -> Workbench:
    """A generated workbench with 20% anomalies (read-only!)."""
    return Workbench.create(GeneratorConfig(anomaly_percent=20.0,
                                            **SMALL_CONFIG))
