"""Anomaly-injection tests: counts, shapes, and cleanability."""

import pytest

from repro.datagen import GeneratorConfig, RFIDGen
from repro.datagen.anomalies import ANOMALY_KINDS

CFG = dict(scale=4, stores=6, warehouses=3, distribution_centers=2,
           locations_per_site=8, products=30, manufacturers=5)


@pytest.fixture(scope="module")
def dirty():
    return RFIDGen(GeneratorConfig(anomaly_percent=20.0, **CFG)).generate()


@pytest.fixture(scope="module")
def clean():
    return RFIDGen(GeneratorConfig(anomaly_percent=0.0, **CFG)).generate()


class TestBudget:
    def test_total_matches_percentage(self, dirty):
        expected = round(0.20 * dirty.anomalies.clean_case_reads)
        assert dirty.anomalies.total == expected

    def test_even_split_across_kinds(self, dirty):
        counts = dirty.anomalies.by_kind
        assert set(counts) == set(ANOMALY_KINDS)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_zero_percent_injects_nothing(self, clean):
        assert clean.anomalies.total == 0

    def test_insertions_and_deletions_change_size(self, dirty, clean):
        # duplicate/reader add 1 row, replacing/cycle add 2, missing
        # removes 1 (the paper notes missing reads shrink the raw data).
        counts = dirty.anomalies.by_kind
        expected_delta = (counts["duplicate"] + counts["reader"]
                          + 2 * counts["replacing"] + 2 * counts["cycle"]
                          - counts["missing"])
        assert len(dirty.case_reads) \
            == dirty.anomalies.clean_case_reads + expected_delta


class TestShapes:
    def test_duplicates_within_t1(self, dirty):
        """Some pair of same-loc reads within t1 must now exist."""
        by_epc = {}
        for row in dirty.case_reads:
            by_epc.setdefault(row[0], []).append(row)
        found = 0
        for rows in by_epc.values():
            rows = sorted(rows, key=lambda r: r[1])
            for left, right in zip(rows, rows[1:]):
                if left[3] == right[3] \
                        and 0 < right[1] - left[1] < dirty.config.t1_duplicate:
                    found += 1
        # Later injections can land between a read and its duplicate, so
        # adjacency holds for most but not all injected pairs.
        assert found >= 0.85 * dirty.anomalies.by_kind["duplicate"]

    def test_reader_x_reads_present(self, dirty):
        readers = {row[2] for row in dirty.case_reads}
        assert dirty.reader_x in readers

    def test_reader_anomaly_shape(self, dirty):
        """Each readerX read has some read within t2 before it."""
        by_epc = {}
        for row in dirty.case_reads:
            by_epc.setdefault(row[0], []).append(row)
        t2 = dirty.config.t2_reader
        confirmed = 0
        for rows in by_epc.values():
            rows = sorted(rows, key=lambda r: r[1])
            for index, row in enumerate(rows):
                if row[2] != dirty.reader_x:
                    continue
                if any(0 < row[1] - prev[1] < t2 for prev in rows[:index]):
                    confirmed += 1
        assert confirmed >= dirty.anomalies.by_kind["reader"] // 2

    def test_replacing_cross_reads_at_loc2(self, dirty):
        at_loc2 = [row for row in dirty.case_reads if row[3] == dirty.loc2]
        assert len(at_loc2) >= dirty.anomalies.by_kind["replacing"]

    def test_missing_shrinks_some_sequences(self, dirty, clean):
        clean_counts = {}
        for row in clean.case_reads:
            clean_counts[row[0]] = clean_counts.get(row[0], 0) + 1
        dirty_counts = {}
        for row in dirty.case_reads:
            dirty_counts[row[0]] = dirty_counts.get(row[0], 0) + 1
        shrunk = sum(1 for epc, n in clean_counts.items()
                     if dirty_counts.get(epc, 0) < n)
        assert shrunk > 0

    def test_sequences_stay_time_sorted(self, dirty):
        by_epc = {}
        for row in dirty.case_reads:
            by_epc.setdefault(row[0], []).append(row[1])
        for times in by_epc.values():
            assert times == sorted(times)


class TestCleansingRemovesAnomalies:
    def test_rules_reduce_dirty_data_towards_clean_size(self, dirty):
        """Applying all five rules removes roughly the injected surplus.

        Exact equality with the clean dataset is not expected (MODIFY
        keeps relocated rows; compensated missing reads come back with
        pallet timestamps), but deletions must dominate."""
        from repro.datagen import load_into_database
        from repro.rewrite import DeferredCleansingEngine
        from repro.workloads import make_registry

        db = load_into_database(dirty)
        registry = make_registry(db, dirty)
        engine = DeferredCleansingEngine(db, registry)
        cleansed = engine.execute("select count(*) from caser",
                                  strategies={"naive"}).scalar()
        dirty_count = len(dirty.case_reads)
        removable = (dirty.anomalies.by_kind["duplicate"]
                     + dirty.anomalies.by_kind["reader"]
                     + dirty.anomalies.by_kind["cycle"])
        compensated = dirty.anomalies.by_kind["missing"]
        # All delete-style anomalies must be gone; compensation adds rows.
        assert cleansed <= dirty_count
        assert cleansed >= dirty_count - 2 * removable
        assert cleansed >= compensated
