"""Unit tests for the topology and EPC-encoding helpers."""

import random

import pytest

from repro.datagen.config import GeneratorConfig
from repro.datagen.epc import GLN_LENGTH, case_epc, location_gln, pallet_epc
from repro.datagen.topology import Topology


class TestEpcEncoding:
    def test_fixed_width_50(self):
        for serial in (0, 1, 999, 10**9):
            assert len(case_epc(serial)) == 50
            assert len(pallet_epc(serial)) == 50

    def test_uniqueness_and_order(self):
        epcs = [case_epc(serial) for serial in range(1000)]
        assert len(set(epcs)) == 1000
        assert epcs == sorted(epcs)  # zero padding keeps lexical order

    def test_namespaces_disjoint(self):
        assert case_epc(7) != pallet_epc(7)
        # The scheme segments differ (sgtin vs sscc).
        assert case_epc(7)[:19] != pallet_epc(7)[:19]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            case_epc(10 ** 45)

    def test_gln_width(self):
        assert len(location_gln(0, 0)) == GLN_LENGTH
        assert len(location_gln(999999, 999999)) == GLN_LENGTH

    def test_gln_uniqueness(self):
        glns = {location_gln(site, loc)
                for site in range(50) for loc in range(100)}
        assert len(glns) == 50 * 100


class TestTopology:
    def _topology(self):
        config = GeneratorConfig(stores=8, warehouses=4,
                                 distribution_centers=2,
                                 locations_per_site=5)
        return Topology(config, random.Random(7)), config

    def test_site_counts(self):
        topology, config = self._topology()
        assert len(topology.dcs) == 2
        assert len(topology.warehouses) == 4
        assert len(topology.stores) == 8
        assert len(topology.sites) == config.sites_total

    def test_locations_per_site(self):
        topology, config = self._topology()
        for site in topology.sites:
            assert len(site.locations) == config.locations_per_site

    def test_site_names_follow_paper_vocabulary(self):
        topology, _ = self._topology()
        kinds = {site.name.split(" ")[0] for site in topology.sites}
        assert kinds == {"distribution", "warehouse", "store"}

    def test_routes_are_three_levels(self):
        topology, _ = self._topology()
        for store in topology.stores:
            route = topology.route_for_store(store)
            assert [site.kind for site in route] == \
                ["dc", "warehouse", "store"]

    def test_routing_is_stable(self):
        topology, _ = self._topology()
        store = topology.stores[0]
        assert topology.route_for_store(store) \
            == topology.route_for_store(store)

    def test_all_locations_flat_list(self):
        topology, config = self._topology()
        locations = topology.all_locations()
        assert len(locations) == config.sites_total \
            * config.locations_per_site
        assert len({location.gln for location in locations}) \
            == len(locations)

    def test_readers_unique_per_location(self):
        topology, _ = self._topology()
        readers = [location.reader
                   for location in topology.all_locations()]
        assert len(set(readers)) == len(readers)
