"""Single-RNG seed plumbing through generator and anomaly injection.

Every random draw in ``datagen`` flows from one ``random.Random``: the
generator seeds it from ``config.seed`` (or the ``generate(seed=...)``
override) and hands the same stream to topology, shipments, and the
anomaly injector. These tests pin the contract the fuzzer depends on:
(seed -> dataset) is a pure function.
"""

from __future__ import annotations

import random

from repro.datagen.anomalies import AnomalyInjector
from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import RFIDGen

CFG = dict(scale=1, distribution_centers=2, warehouses=2, stores=2,
           locations_per_site=2, products=4, manufacturers=2,
           business_steps=4, step_types=2, reads_per_site=2,
           min_cases_per_pallet=1, max_cases_per_pallet=2,
           time_window_days=2)


class TestGenerateSeedOverride:
    def test_override_beats_config_seed(self):
        config = GeneratorConfig(seed=1, **CFG)
        from_override = RFIDGen(config).generate(seed=2)
        from_config = RFIDGen(GeneratorConfig(seed=2, **CFG)).generate()
        assert from_override.case_reads == from_config.case_reads
        assert from_override.pallet_reads == from_config.pallet_reads

    def test_same_override_reproduces(self):
        config = GeneratorConfig(seed=1, **CFG)
        generator = RFIDGen(config)
        assert generator.generate(seed=7).case_reads \
            == generator.generate(seed=7).case_reads

    def test_different_overrides_differ(self):
        generator = RFIDGen(GeneratorConfig(seed=1, **CFG))
        assert generator.generate(seed=7).case_reads \
            != generator.generate(seed=8).case_reads

    def test_none_falls_back_to_config(self):
        config = GeneratorConfig(seed=5, **CFG)
        assert RFIDGen(config).generate(seed=None).case_reads \
            == RFIDGen(config).generate().case_reads

    def test_generate_does_not_mutate_config(self):
        config = GeneratorConfig(seed=5, **CFG)
        RFIDGen(config).generate(seed=9)
        assert config.seed == 5


class TestAnomalySeedPlumbing:
    def _clean(self, seed: int = 3, percent: float = 10.0):
        """Clean dataset whose config asks for *percent* anomalies, so a
        standalone injector can be pointed at it afterwards."""
        data = RFIDGen(GeneratorConfig(seed=seed, anomaly_percent=0.0,
                                       **CFG)).generate()
        data.config.anomaly_percent = percent
        return data

    def test_with_anomalies_is_deterministic(self):
        config = GeneratorConfig(seed=3, anomaly_percent=20.0, **CFG)
        first = RFIDGen(config).generate()
        second = RFIDGen(config).generate()
        assert first.case_reads == second.case_reads
        assert first.anomalies.by_kind == second.anomalies.by_kind

    def test_standalone_injector_seed_kwarg(self):
        first, second = self._clean(), self._clean()
        AnomalyInjector(first, seed=11).inject()
        AnomalyInjector(second, seed=11).inject()
        assert first.case_reads == second.case_reads
        assert first.anomalies.total > 0

    def test_standalone_injector_explicit_rng(self):
        first, second = self._clean(), self._clean()
        AnomalyInjector(first, random.Random(4)).inject()
        AnomalyInjector(second, random.Random(4)).inject()
        assert first.case_reads == second.case_reads

    def test_standalone_injector_defaults_to_config_seed(self):
        first, second = self._clean(), self._clean()
        AnomalyInjector(first).inject()
        AnomalyInjector(second, seed=first.config.seed).inject()
        assert first.case_reads == second.case_reads

    def test_different_injector_seeds_differ(self):
        first = self._clean(percent=40.0)
        second = self._clean(percent=40.0)
        AnomalyInjector(first, seed=1).inject()
        AnomalyInjector(second, seed=2).inject()
        assert first.case_reads != second.case_reads

    def test_no_module_level_rng_in_datagen(self):
        """Nothing in datagen may draw from the shared module-level
        ``random`` stream — all draws flow through the plumbed RNG."""
        import inspect

        from repro.datagen import anomalies, generator, topology

        for module in (generator, anomalies, topology):
            source = inspect.getsource(module)
            assert "random.random(" not in source
            assert "random.randint(" not in source
            assert "random.choice(" not in source
            assert "random.shuffle(" not in source
