"""RFIDGen tests: the Figure 5 contract and trace structure."""

import pytest

from repro.datagen import GeneratorConfig, RFIDGen
from repro.errors import DataGenError

CFG = dict(scale=4, stores=6, warehouses=3, distribution_centers=2,
           locations_per_site=8, products=30, manufacturers=5)


@pytest.fixture(scope="module")
def data():
    return RFIDGen(GeneratorConfig(anomaly_percent=0.0, **CFG)).generate()


class TestFigure5RowCounts:
    """Row-count relationships stated in §6.1 / Figure 5."""

    def test_pallet_reads_are_scale_times_30(self, data):
        assert len(data.pallet_reads) == data.config.scale * 30

    def test_case_count_between_20_and_80_per_pallet(self, data):
        assert data.config.scale * 20 <= len(data.parent_rows) \
            <= data.config.scale * 80

    def test_case_reads_are_cases_times_30(self, data):
        assert len(data.case_reads) == len(data.parent_rows) * 30

    def test_epc_info_one_row_per_case(self, data):
        assert len(data.epc_info_rows) == len(data.parent_rows)

    def test_locations_sites_times_locations(self, data):
        expected = (CFG["stores"] + CFG["warehouses"]
                    + CFG["distribution_centers"]) * CFG["locations_per_site"]
        assert len(data.location_rows) == expected

    def test_steps_and_types(self, data):
        assert len(data.step_rows) == data.config.business_steps
        types = {step_type for _, step_type in data.step_rows}
        assert len(types) == data.config.step_types

    def test_products_and_manufacturers(self, data):
        assert len(data.product_rows) == CFG["products"]
        manufacturers = {m for _, m in data.product_rows}
        assert len(manufacturers) <= CFG["manufacturers"]

    def test_paper_scale_formula_at_default_topology(self):
        """The headline contract: caseR ~ s*1500 rows on average."""
        data = RFIDGen(GeneratorConfig(anomaly_percent=0.0,
                                       **{**CFG, "scale": 10})).generate()
        per_pallet = len(data.parent_rows) / 10
        assert 20 <= per_pallet <= 80
        assert len(data.case_reads) == len(data.parent_rows) * 30


class TestTraceStructure:
    def test_epcs_are_50_characters_and_unique(self, data):
        epcs = {row[0] for row in data.case_reads}
        assert all(len(epc) == 50 for epc in epcs)
        pallet_epcs = {row[0] for row in data.pallet_reads}
        assert not (epcs & pallet_epcs)

    def test_case_travels_with_pallet(self, data):
        """Every case read pairs with a pallet read: same reader and
        location, within pallet_case_gap seconds."""
        pallet_of = dict(data.parent_rows)
        pallet_reads = {}
        for row in data.pallet_reads:
            pallet_reads.setdefault(row[0], []).append(row)
        gap = data.config.pallet_case_gap
        checked = 0
        for row in data.case_reads[:500]:
            pallet = pallet_of[row[0]]
            matches = [p for p in pallet_reads[pallet]
                       if p[3] == row[3] and 0 < row[1] - p[1] < gap
                       and p[2] == row[2]]
            assert matches, f"case read {row} has no pallet companion"
            checked += 1
        assert checked

    def test_sequences_are_strictly_increasing_after_sort(self, data):
        by_epc = {}
        for row in data.case_reads:
            by_epc.setdefault(row[0], []).append(row[1])
        for times in by_epc.values():
            assert times == sorted(times)

    def test_thirty_reads_per_case_across_three_sites(self, data):
        by_epc = {}
        for row in data.case_reads:
            by_epc.setdefault(row[0], []).append(row)
        sites_by_gln = {gln: site for gln, site, _ in data.location_rows}
        for rows in list(by_epc.values())[:20]:
            assert len(rows) == 30
            sites = {sites_by_gln[row[3]] for row in rows}
            assert len(sites) == 3

    def test_route_goes_dc_warehouse_store(self, data):
        sites_by_gln = {gln: site for gln, site, _ in data.location_rows}
        by_epc = {}
        for row in data.case_reads:
            by_epc.setdefault(row[0], []).append(row)
        rows = sorted(next(iter(by_epc.values())), key=lambda r: r[1])
        site_order = []
        for row in rows:
            site = sites_by_gln[row[3]]
            if not site_order or site_order[-1] != site:
                site_order.append(site)
        kinds = [site.split()[0] for site in site_order]
        assert kinds == ["distribution", "warehouse", "store"]

    def test_determinism(self):
        config = GeneratorConfig(anomaly_percent=5.0, **CFG)
        first = RFIDGen(config).generate()
        second = RFIDGen(config).generate()
        assert first.case_reads == second.case_reads
        assert first.loc1 == second.loc1

    def test_different_seeds_differ(self):
        first = RFIDGen(GeneratorConfig(seed=1, **CFG)).generate()
        second = RFIDGen(GeneratorConfig(seed=2, **CFG)).generate()
        assert first.case_reads != second.case_reads

    def test_replacing_locations_distinct(self, data):
        assert len({data.loc1, data.loc2, data.loc_a}) == 3


class TestConfigValidation:
    def test_zero_scale_rejected(self):
        with pytest.raises(DataGenError):
            RFIDGen(GeneratorConfig(scale=0))

    def test_inverted_case_range_rejected(self):
        with pytest.raises(DataGenError):
            RFIDGen(GeneratorConfig(min_cases_per_pallet=10,
                                    max_cases_per_pallet=5))

    def test_bad_anomaly_percent_rejected(self):
        with pytest.raises(DataGenError):
            RFIDGen(GeneratorConfig(anomaly_percent=120.0))

    def test_latency_must_exceed_gap(self):
        with pytest.raises(DataGenError):
            RFIDGen(GeneratorConfig(min_read_latency=60,
                                    pallet_case_gap=600))
