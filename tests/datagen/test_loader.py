"""Loader tests: the paper's physical design lands in the database."""

import pytest

from repro.datagen import GeneratorConfig, RFIDGen, load_into_database

CFG = dict(scale=2, stores=4, warehouses=2, distribution_centers=2,
           locations_per_site=5, products=20, manufacturers=5)


@pytest.fixture(scope="module")
def db():
    data = RFIDGen(GeneratorConfig(anomaly_percent=10.0, **CFG)).generate()
    return load_into_database(data)


class TestTables:
    def test_all_seven_tables_exist(self, db):
        for name in ("caser", "palletr", "parent", "epc_info", "product",
                     "locs", "steps"):
            assert name in db.catalog

    def test_row_counts_match_generated(self, db):
        assert len(db.table("steps")) == 100
        assert len(db.table("locs")) == 8 * 5

    def test_foreign_keys_resolve(self, db):
        orphans = db.execute("""
            select count(*) from caser
            where biz_loc not in (select gln from locs)""").scalar()
        assert orphans == 0
        unparented = db.execute("""
            select count(*) from epc_info
            where epc not in (select child_epc from parent)""").scalar()
        assert unparented == 0


class TestIndexes:
    def test_reads_tables_indexed_except_reader(self, db):
        for table_name in ("caser", "palletr"):
            table = db.table(table_name)
            for column in ("epc", "rtime", "biz_loc", "biz_step"):
                assert table.index_on(column) is not None, column
            assert table.index_on("reader") is None

    def test_parent_indexed_on_child(self, db):
        assert db.table("parent").index_on("child_epc") is not None

    def test_dimension_indexes(self, db):
        assert db.table("locs").index_on("site") is not None
        assert db.table("steps").index_on("type") is not None

    def test_stats_computed(self, db):
        stats = db.stats.get("caser")
        assert stats is not None
        assert stats.row_count == len(db.table("caser"))
        assert stats.column("rtime").ndv > 0

    def test_rtime_queries_use_index(self, db):
        low = min(db.table("caser").column_values("rtime"))
        explained = db.explain(
            f"select count(*) from caser where rtime <= {low}")
        assert "IndexRangeScan" in explained.text
