"""The deterministic fuzz slice that runs in the regular CI matrix.

A bounded 25-iteration campaign at seed 0 must complete with zero
divergences; determinism of case generation is pinned separately so a
CI failure always reproduces locally from the seed alone.
"""

from __future__ import annotations

import random

from repro.fuzz.runner import FuzzConfig, generate_case, run_fuzz

SEED = 0
ITERATIONS = 25


def test_deterministic_slice_is_clean() -> None:
    outcome = run_fuzz(FuzzConfig(seed=SEED, iterations=ITERATIONS))
    assert outcome.ok, outcome.summary()
    assert outcome.iterations_run == ITERATIONS


def test_case_generation_is_deterministic() -> None:
    first = generate_case(random.Random(1234), seed=SEED, iteration=7)
    second = generate_case(random.Random(1234), seed=SEED, iteration=7)
    assert first.reads_rows == second.reads_rows
    assert first.rules == second.rules
    assert first.query.sql() == second.query.sql()


def test_different_streams_differ() -> None:
    first = generate_case(random.Random(1), seed=SEED, iteration=0)
    second = generate_case(random.Random(2), seed=SEED, iteration=0)
    assert (first.reads_rows, first.rules) != (second.reads_rows,
                                               second.rules)


def test_cli_exit_status_clean(capsys) -> None:
    from repro.fuzz.__main__ import main

    assert main(["--seed", str(SEED), "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "0 divergences" in out


def test_cli_rejects_unknown_strategy(capsys) -> None:
    from repro.fuzz.__main__ import main

    assert main(["--strategies", "bogus"]) == 2
    assert "unknown strategies" in capsys.readouterr().err


def test_time_budget_stops_early() -> None:
    outcome = run_fuzz(FuzzConfig(seed=SEED, iterations=10_000,
                                  time_budget=0.0))
    assert outcome.iterations_run == 0
