"""Differential-oracle unit tests on hand-built cases."""

from __future__ import annotations

import pytest

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.oracle import (ALL_LABELS, build_database,
                               forced_parallel_windows, run_case)
from repro.minidb.optimizer.planner import PlannerOptions
from repro.minidb.result import ResultSet
from repro.rewrite.engine import DeferredCleansingEngine

ROWS = [
    ("E1", 100, "r1", "L1", "step"),
    ("E1", 105, "r2", "L1", "step"),   # duplicate within 10s window
    ("E1", 300, "r1", "L2", "step"),
    ("E2", 150, "r1", "L1", "step"),
]

DUP_RULE = ("DEFINE dup ON caser CLUSTER BY epc SEQUENCE BY rtime\n"
            "AS (A, B)\n"
            "WHERE b.rtime - a.rtime < 10 AND a.biz_loc = b.biz_loc\n"
            "ACTION DELETE B")


def _case(conjuncts: list[str],
          dimensions: list[DimensionSpec] | None = None) -> FuzzCase:
    return FuzzCase(seed=0, iteration=0, reads_rows=list(ROWS),
                    rules=[DUP_RULE],
                    query=QuerySpec(conjuncts=conjuncts,
                                    dimensions=dimensions or []))


def test_all_strategies_agree_on_clean_case() -> None:
    report = run_case(_case(["c.rtime >= 105"]))
    assert report.ok, report.summary()
    # Every label was exercised (ok or a legitimate skip), none missing.
    assert set(report.results) == set(ALL_LABELS)
    assert all(status == "ok" or status.startswith("skipped")
               for status in report.results.values())


def test_every_label_reported() -> None:
    report = run_case(_case(["c.rtime >= 105"]))
    for label in ALL_LABELS:
        assert report.results[label] == "ok" \
            or report.results[label].startswith("skipped"), (
                label, report.results[label])


def test_label_restriction_limits_sweep() -> None:
    report = run_case(_case(["c.rtime >= 105"]),
                      labels=["expanded", "parallel"])
    assert set(report.results) <= {"expanded", "parallel"}
    assert report.ok


def test_dimension_join_case() -> None:
    locs = DimensionSpec(
        name="locs", alias="l", fact_key="biz_loc", dim_key="gln",
        predicate="l.site = 'dc 1'",
        rows=[("L1", "dc 1", "dock"), ("L2", "store 1", "shelf")],
        schema=(("gln", "varchar"), ("site", "varchar"),
                ("loc_desc", "varchar")))
    report = run_case(_case(["c.rtime <= 200"], [locs]))
    assert report.ok, report.summary()
    # The join restricts to L1 rows; the duplicate at t=105 is cleansed.
    assert report.baseline == (
        ("E1", 100, "r1", "L1", "step"),
        ("E2", 150, "r1", "L1", "step"),
    )


def test_baseline_is_canonical_bag() -> None:
    result = ResultSet(["a", "b"], [(2, "y"), (1, "x"), (2, "y")])
    assert result.canonical() == ((1, "x"), (2, "y"), (2, "y"))
    shuffled = ResultSet(["a", "b"], [(2, "y"), (2, "y"), (1, "x")])
    assert result.canonical() == shuffled.canonical()
    # Duplicates are preserved: bags, not sets.
    deduped = ResultSet(["a", "b"], [(2, "y"), (1, "x")])
    assert result.canonical() != deduped.canonical()


def test_parallel_label_actually_fans_out() -> None:
    """The parallel comparison must exercise the fork-pool path, not
    silently fall back to serial evaluation (the metrics hook counts
    window operators whose last run used workers)."""
    case = _case(["c.rtime >= 0"])
    db, registry = build_database(case)
    db.options = PlannerOptions(parallel_windows=True)
    engine = DeferredCleansingEngine(db, registry)
    with forced_parallel_windows(workers=2, threshold=1):
        _, metrics, _ = engine.execute_with_metrics(
            case.query.sql("caser"), strategies={"naive"})
    assert metrics.parallel_window_ops >= 1


def test_divergence_reported_with_row_diff() -> None:
    """A deliberately wrong comparison row-set produces missing /
    unexpected bags (exercised through the public diff on a case where
    one strategy is forced to disagree via a broken dimension)."""
    broken = DimensionSpec(
        name="locs", alias="l", fact_key="biz_loc", dim_key="gln",
        predicate=None,
        rows=[("L1", "dc 1", "dock")],
        schema=(("gln", "varchar"), ("site", "varchar"),
                ("loc_desc", "varchar")))
    report = run_case(_case([], [broken]))
    # Still a coherent case — all strategies see the same broken join.
    assert report.ok, report.summary()


@pytest.mark.parametrize("conjuncts", [[], ["c.epc = 'E1'"]])
def test_runs_without_selection(conjuncts: list[str]) -> None:
    report = run_case(_case(conjuncts))
    assert report.ok, report.summary()
