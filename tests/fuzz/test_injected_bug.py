"""End-to-end proof the oracle has teeth.

A deliberate wrong-answer mutation in the expanded analysis (dropping
every derived context condition, collapsing ``ec = s OR cc`` to ``s``)
is switched on via ``REPRO_FUZZ_INJECT_BUG``; the fuzzer must catch it
within a bounded deterministic campaign, shrink the case to the
acceptance bound (<=10 rows / 1 rule / <=1 conjunct), and write a
regression file that passes once the fault is switched off again.
"""

from __future__ import annotations

import pytest

from repro.fuzz.oracle import run_case
from repro.fuzz.runner import FuzzConfig, run_fuzz
from repro.rewrite.expanded import FAULT_ENV

#: Seed 2 is known to surface the injected fault at iteration 4; the
#: campaign stays deterministic so CI failures reproduce locally.
SEED = 2
ITERATIONS = 25


@pytest.fixture
def injected_fault(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "1")


def test_injected_bug_is_caught_and_shrunk(injected_fault, tmp_path,
                                           monkeypatch) -> None:
    outcome = run_fuzz(FuzzConfig(seed=SEED, iterations=ITERATIONS,
                                  regression_dir=tmp_path))
    assert not outcome.ok, (
        "the fuzzer failed to catch the injected expanded-rewrite bug "
        f"within {ITERATIONS} iterations at seed {SEED}")
    failure = outcome.failures[0]

    # The divergence must implicate the expanded analysis family (the
    # region cache and join-back consume the same context conditions).
    diverged = failure.report.diverged_labels()
    assert diverged & {"expanded", "joinback", "chosen", "cached-cold",
                       "cached-warm", "cached-invalidated"}, diverged

    # Acceptance bound: <=10 rows / exactly 1 rule / <=1 conjunct.
    rows, rules, conjuncts = failure.shrunk.size()
    assert rows <= 10, failure.shrunk.describe()
    assert rules == 1, failure.shrunk.describe()
    assert conjuncts <= 1, failure.shrunk.describe()

    # The shrunk case still reproduces under the fault ...
    shrunk_report = run_case(failure.shrunk)
    assert not shrunk_report.ok

    # ... and a self-contained regression file was written.
    assert failure.regression_path is not None
    assert failure.regression_path.parent == tmp_path
    text = failure.regression_path.read_text()
    assert "run_case" in text and "READS_ROWS" in text

    # With the fault off the shrunk case must pass: the bug, not the
    # case, was the problem.
    monkeypatch.delenv(FAULT_ENV)
    clean_report = run_case(failure.shrunk)
    assert clean_report.ok, clean_report.summary()


#: Seed 3 surfaces the storage decode fault at iteration 0: any case
#: with at least one read row decodes a heap page after the disk
#: label's reopen, and the perturbed trailing row diverges the bag.
STORAGE_SEED = 3
STORAGE_ITERATIONS = 15


def test_storage_fault_is_caught_and_shrunk(tmp_path,
                                            monkeypatch) -> None:
    """``REPRO_FUZZ_INJECT_BUG=storage`` perturbs the last row of every
    heap page on decode — corruption below the buffer pool that only
    manifests once a page is re-read from disk. Only the ``disk`` label
    runs that path, so it alone must catch it, and the shrunk case must
    become a runnable regression."""
    monkeypatch.setenv(FAULT_ENV, "storage")
    # Pin the ambient backend to memory: under a disk-mode CI leg every
    # label would otherwise decode corrupted pages, including the
    # baseline, and the diff would no longer isolate the storage path.
    monkeypatch.setenv("REPRO_STORAGE", "memory")
    outcome = run_fuzz(FuzzConfig(seed=STORAGE_SEED,
                                  iterations=STORAGE_ITERATIONS,
                                  regression_dir=tmp_path))
    assert not outcome.ok, (
        "the fuzzer failed to catch the injected storage bug within "
        f"{STORAGE_ITERATIONS} iterations at seed {STORAGE_SEED}")
    failure = outcome.failures[0]

    # The decode fault lives below the buffer pool; every in-memory
    # label must have stayed clean.
    assert failure.report.diverged_labels() == {"disk"}

    rows, rules, conjuncts = failure.shrunk.size()
    assert rows <= 10, failure.shrunk.describe()
    assert rules == 1, failure.shrunk.describe()
    assert conjuncts <= 1, failure.shrunk.describe()

    shrunk_report = run_case(failure.shrunk)
    assert not shrunk_report.ok

    assert failure.regression_path is not None
    assert failure.regression_path.parent == tmp_path
    text = failure.regression_path.read_text()
    assert "run_case" in text and "READS_ROWS" in text

    monkeypatch.delenv(FAULT_ENV)
    clean_report = run_case(failure.shrunk)
    assert clean_report.ok, clean_report.summary()


#: Seed 0 surfaces the encode code-mapping fault at iteration 0: any
#: rule whose predicate evaluates over a dictionary column with at
#: least two distinct values runs the rotated mapping.
ENCODE_SEED = 0
ENCODE_ITERATIONS = 15


def test_encode_fault_is_caught_and_shrunk(tmp_path,
                                           monkeypatch) -> None:
    """``REPRO_FUZZ_INJECT_BUG=encode`` rotates the per-dictionary-value
    results inside the encoded mapping kernels; only the ``encoded``
    label forces encoding on, so it alone must catch it, and the shrunk
    case must become a runnable regression."""
    monkeypatch.setenv(FAULT_ENV, "encode")
    # Pin the ambient knobs: under a REPRO_ENCODE=1 CI leg every batch
    # label would otherwise run the rotated mapping (including the
    # vectorized one), and the diff would no longer isolate the encoded
    # execution path; memory storage keeps the disk label's scans off
    # the columnar cache entirely.
    monkeypatch.setenv("REPRO_ENCODE", "0")
    monkeypatch.setenv("REPRO_STORAGE", "memory")
    outcome = run_fuzz(FuzzConfig(seed=ENCODE_SEED,
                                  iterations=ENCODE_ITERATIONS,
                                  regression_dir=tmp_path))
    assert not outcome.ok, (
        "the fuzzer failed to catch the injected encode bug within "
        f"{ENCODE_ITERATIONS} iterations at seed {ENCODE_SEED}")
    failure = outcome.failures[0]

    # The rotated mapping lives entirely inside the encoded kernels;
    # every plain-execution label must have stayed clean.
    assert failure.report.diverged_labels() == {"encoded"}

    rows, rules, conjuncts = failure.shrunk.size()
    assert rows <= 10, failure.shrunk.describe()
    assert rules == 1, failure.shrunk.describe()
    assert conjuncts <= 1, failure.shrunk.describe()

    shrunk_report = run_case(failure.shrunk)
    assert not shrunk_report.ok

    assert failure.regression_path is not None
    assert failure.regression_path.parent == tmp_path
    text = failure.regression_path.read_text()
    assert "run_case" in text and "READS_ROWS" in text

    monkeypatch.delenv(FAULT_ENV)
    clean_report = run_case(failure.shrunk)
    assert clean_report.ok, clean_report.summary()


def test_fault_flag_off_means_no_fault(monkeypatch) -> None:
    monkeypatch.setenv(FAULT_ENV, "0")
    outcome = run_fuzz(FuzzConfig(seed=SEED, iterations=5))
    assert outcome.ok, outcome.summary()


#: Seed 1 surfaces the codegen emitter fault at iteration 0; the
#: inclusivity swap needs a case whose comparison constant sits exactly
#: on a row boundary, which this seed's quantile-drawn rtime bound does.
CODEGEN_SEED = 1
CODEGEN_ITERATIONS = 20


def test_codegen_fault_is_caught_and_shrunk(tmp_path,
                                            monkeypatch) -> None:
    """``REPRO_FUZZ_INJECT_BUG=codegen`` flips comparison inclusivity
    inside the kernel emitter; only the compiled label must catch it,
    and the shrunk case must become a runnable regression."""
    monkeypatch.setenv(FAULT_ENV, "codegen")
    # codegen="off" pins the ambient knob for every label; the compiled
    # label still forces kernels on for its own run, so it alone can
    # see the emitter fault even when the suite runs REPRO_CODEGEN=1.
    outcome = run_fuzz(FuzzConfig(seed=CODEGEN_SEED,
                                  iterations=CODEGEN_ITERATIONS,
                                  codegen="off",
                                  regression_dir=tmp_path))
    assert not outcome.ok, (
        "the fuzzer failed to catch the injected codegen bug within "
        f"{CODEGEN_ITERATIONS} iterations at seed {CODEGEN_SEED}")
    failure = outcome.failures[0]

    # The emitter fault lives entirely inside compiled kernels; every
    # interpreted label must have stayed clean.
    assert failure.report.diverged_labels() == {"compiled"}

    rows, rules, conjuncts = failure.shrunk.size()
    assert rows <= 10, failure.shrunk.describe()
    assert rules == 1, failure.shrunk.describe()
    assert conjuncts <= 1, failure.shrunk.describe()

    shrunk_report = run_case(failure.shrunk)
    assert not shrunk_report.ok

    assert failure.regression_path is not None
    assert failure.regression_path.parent == tmp_path
    text = failure.regression_path.read_text()
    assert "run_case" in text and "READS_ROWS" in text

    monkeypatch.delenv(FAULT_ENV)
    clean_report = run_case(failure.shrunk)
    assert clean_report.ok, clean_report.summary()
