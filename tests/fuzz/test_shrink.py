"""Delta-debugging shrinker unit tests (engine-free predicates)."""

from __future__ import annotations

from dataclasses import replace

from repro.fuzz.cases import FuzzCase, QuerySpec
from repro.fuzz.shrink import ddmin, shrink_case


def test_ddmin_finds_minimal_pair() -> None:
    items = list(range(10))
    result = ddmin(items, lambda kept: {3, 7} <= set(kept))
    assert result == [3, 7]


def test_ddmin_single_culprit() -> None:
    result = ddmin(list(range(8)), lambda kept: 5 in kept)
    assert result == [5]


def test_ddmin_empty_when_failure_is_unconditional() -> None:
    assert ddmin([1, 2, 3], lambda kept: True) == []


def test_ddmin_keeps_everything_when_all_needed() -> None:
    items = [1, 2, 3, 4]
    result = ddmin(items, lambda kept: kept == items)
    assert result == items


def test_ddmin_preserves_order() -> None:
    items = list(range(20))
    result = ddmin(items, lambda kept: {2, 11, 17} <= set(kept))
    assert result == [2, 11, 17]


def test_ddmin_probe_count_is_subquadratic() -> None:
    probes = []

    def fails(kept: list[int]) -> bool:
        probes.append(len(kept))
        return 42 in kept

    ddmin(list(range(64)), fails)
    # ddmin is O(n log n)-ish in the happy case; a linear scan of
    # singletons alone would already cost 64 probes.
    assert len(probes) < 200


def _case() -> FuzzCase:
    rows = [("E", index, "r", "L", "s") for index in range(12)]
    rules = ["rule_a", "rule_b", "rule_c"]
    query = QuerySpec(conjuncts=["c.rtime <= 5", "c.reader != 'r'",
                                 "c.epc = 'E'"])
    return FuzzCase(seed=0, iteration=0, reads_rows=rows, rules=rules,
                    query=query)


def test_shrink_case_minimizes_every_axis() -> None:
    # Failure requires: the row with rtime 7, rule_b, and any conjunct
    # mentioning rtime. Everything else must be stripped.
    def check(candidate: FuzzCase) -> bool:
        has_row = any(row[1] == 7 for row in candidate.reads_rows)
        has_rule = "rule_b" in candidate.rules
        has_conjunct = any("rtime" in conjunct
                           for conjunct in candidate.query.conjuncts)
        return has_row and has_rule and has_conjunct

    shrunk = shrink_case(_case(), ["expanded"], check=check)
    assert shrunk.size() == (1, 1, 1)
    assert shrunk.reads_rows == [("E", 7, "r", "L", "s")]
    assert shrunk.rules == ["rule_b"]
    assert shrunk.query.conjuncts == ["c.rtime <= 5"]


def test_shrink_case_drops_conjuncts_to_empty() -> None:
    # The failure does not depend on the query at all: conjuncts and
    # dimensions must both shrink to nothing (a legal empty query).
    def check(candidate: FuzzCase) -> bool:
        return any(row[1] == 3 for row in candidate.reads_rows) \
            and bool(candidate.rules)

    shrunk = shrink_case(_case(), ["joinback"], check=check)
    assert shrunk.size() == (1, 1, 0)
    assert shrunk.query.conjuncts == []


def test_shrink_case_fixpoint_runs_multiple_rounds() -> None:
    # Dropping the last conjunct unlocks further row removal: rows
    # matter only while a conjunct is present, so round 2 must re-shrink
    # rows after round 1 emptied the conjunct list... which ddmin can
    # only discover on the second pass.
    def check(candidate: FuzzCase) -> bool:
        if candidate.query.conjuncts:
            return len(candidate.reads_rows) >= 2 \
                and "rule_a" in candidate.rules
        return bool(candidate.reads_rows) \
            and "rule_a" in candidate.rules

    shrunk = shrink_case(_case(), ["expanded"], check=check)
    assert shrunk.size() == (1, 1, 0)


def test_shrink_case_preserves_failure(tmp_path) -> None:
    # The returned case must still satisfy the predicate.
    def check(candidate: FuzzCase) -> bool:
        return any(row[1] in (2, 9) for row in candidate.reads_rows)

    case = _case()
    shrunk = shrink_case(case, ["parallel"], check=check)
    assert check(shrunk)
    assert len(shrunk.reads_rows) == 1


def test_with_helpers_do_not_mutate() -> None:
    case = _case()
    case.with_rows([])
    case.with_rules([])
    case.with_query(replace(case.query, conjuncts=[]))
    assert case.size() == (12, 3, 3)
