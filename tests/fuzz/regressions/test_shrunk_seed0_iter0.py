"""Auto-generated fuzz regression (do not edit by hand).

Found by: python -m repro.fuzz --seed 0 (iteration 0)
Diverged: encoded
Shrunk to 1 rows / 1 rules / 0 query conjuncts.

Reproduce interactively:

    from repro.fuzz.oracle import run_case
    import test_shrunk_seed0_iter0 as m
    print(run_case(m._case()).summary())
"""

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.oracle import run_case

READS_ROWS = [
    ('urn:epc:id:sgtin:c.0000000000000000000000000000001', 980922699, 'reader_0000040000010', '0000040000010', 'step_003'),
]

RULES = [
    "DEFINE fuzz_rule_0 ON caser CLUSTER BY epc SEQUENCE BY rtime\nAS (A, B)\nWHERE b.reader = 'reader_0000020000000'\nACTION DELETE A",
]

QUERY = QuerySpec(
    conjuncts=[],
    dimensions=[
        DimensionSpec(name='locs', alias='l',
                      fact_key='biz_loc', dim_key='gln',
                      predicate="l.site = 'store 1'",
                      rows=[('0000000000000', 'distribution center 0', 'distribution center 0 / bay 0'), ('0000000000010', 'distribution center 0', 'distribution center 0 / bay 1'), ('0000000000020', 'distribution center 0', 'distribution center 0 / bay 2'), ('0000010000000', 'distribution center 1', 'distribution center 1 / bay 0'), ('0000010000010', 'distribution center 1', 'distribution center 1 / bay 1'), ('0000010000020', 'distribution center 1', 'distribution center 1 / bay 2'), ('0000020000000', 'warehouse 0', 'warehouse 0 / bay 0'), ('0000020000010', 'warehouse 0', 'warehouse 0 / bay 1'), ('0000020000020', 'warehouse 0', 'warehouse 0 / bay 2'), ('0000030000000', 'warehouse 1', 'warehouse 1 / bay 0'), ('0000030000010', 'warehouse 1', 'warehouse 1 / bay 1'), ('0000030000020', 'warehouse 1', 'warehouse 1 / bay 2'), ('0000040000000', 'store 0', 'store 0 / bay 0'), ('0000040000010', 'store 0', 'store 0 / bay 1'), ('0000040000020', 'store 0', 'store 0 / bay 2'), ('0000050000000', 'store 1', 'store 1 / bay 0'), ('0000050000010', 'store 1', 'store 1 / bay 1'), ('0000050000020', 'store 1', 'store 1 / bay 2'), ('0000060000000', 'store 2', 'store 2 / bay 0'), ('0000060000010', 'store 2', 'store 2 / bay 1'), ('0000060000020', 'store 2', 'store 2 / bay 2')],
                      schema=(('gln', 'varchar'), ('site', 'varchar'), ('loc_desc', 'varchar'))),
    ],
)


def _case() -> FuzzCase:
    return FuzzCase(seed=0, iteration=0,
                    reads_rows=list(READS_ROWS), rules=list(RULES),
                    query=QUERY)


def test_shrunk_seed0_iter0() -> None:
    report = run_case(_case())
    assert report.ok, report.summary()
