"""Auto-generated fuzz regression (do not edit by hand).

Found by: python -m repro.fuzz --seed 0 (iteration 3)
Diverged: sharded
Shrunk to 1 rows / 1 rules / 1 query conjuncts.

Reproduce interactively:

    from repro.fuzz.oracle import run_case
    import test_shrunk_seed0_iter3 as m
    print(run_case(m._case()).summary())
"""

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.oracle import run_case

READS_ROWS = [
    ('urn:epc:id:sgtin:c.0000000000000000000000000000003', 978326722, 'reader_0000_002', '0000000000020', 'step_001'),
]

RULES = [
    "DEFINE fuzz_rule_0 ON caser CLUSTER BY epc SEQUENCE BY rtime\nAS (A, B, C)\nWHERE a.biz_loc = b.biz_loc AND c.rtime - b.rtime < 600 AND a.biz_loc = '0000030000020'\nACTION MODIFY B.biz_loc = '0000040000010'",
]

QUERY = QuerySpec(
    conjuncts=["c.epc = 'urn:epc:id:sgtin:c.0000000000000000000000000000000'"],
    dimensions=[
    ],
)


def _case() -> FuzzCase:
    return FuzzCase(seed=0, iteration=3,
                    reads_rows=list(READS_ROWS), rules=list(RULES),
                    query=QUERY)


def test_shrunk_seed0_iter3() -> None:
    report = run_case(_case())
    assert report.ok, report.summary()
