"""Auto-generated fuzz regression (do not edit by hand).

Found by: python -m repro.fuzz --seed 3 (iteration 0)
Diverged: disk
Shrunk to 1 rows / 1 rules / 0 query conjuncts.

Reproduce interactively:

    from repro.fuzz.oracle import run_case
    import test_shrunk_seed3_iter0 as m
    print(run_case(m._case()).summary())
"""

from repro.fuzz.cases import DimensionSpec, FuzzCase, QuerySpec
from repro.fuzz.oracle import run_case

READS_ROWS = [
    ('urn:epc:id:sgtin:c.0000000000000000000000000000004', 978405729, 'reader_0000_001', '0000000000010', 'step_001'),
]

RULES = [
    "DEFINE fuzz_rule_0 ON caser CLUSTER BY epc SEQUENCE BY rtime\nAS (A, B)\nWHERE b.rtime - a.rtime < 120\nACTION MODIFY B.biz_loc = '0000060000020'",
]

QUERY = QuerySpec(
    conjuncts=[],
    dimensions=[
    ],
)


def _case() -> FuzzCase:
    return FuzzCase(seed=3, iteration=0,
                    reads_rows=list(READS_ROWS), rules=list(RULES),
                    query=QUERY)


def test_shrunk_seed3_iter0() -> None:
    report = run_case(_case())
    assert report.ok, report.summary()
