"""Pinned fuzz seed for the streaming-append oracle label.

Found by: python -m repro.fuzz --seed 11 (label sweep: incremental)
Shrunk to 6 rows / 1 rules / 1 query conjuncts — the smallest case that
still loads a prefix, warms the region cache, and streams two append
chunks through ``Database.append`` with a re-query after each (three
cluster-key sequences keep the dirty fraction under the patch
threshold, so the patch path — not invalidation — is exercised).

Reproduce interactively:

    from repro.fuzz.oracle import run_case
    import test_shrunk_incremental_seed11 as m
    print(run_case(m._case(), labels=("incremental",)).summary())
"""

from repro.fuzz.cases import FuzzCase, QuerySpec
from repro.fuzz.oracle import run_case

READS_ROWS = [
    ('urn:epc:id:sgtin:c.0000000000000000000000000000001', 978326700, 'reader_0000_001', '0000010000010', 'step_001'),
    ('urn:epc:id:sgtin:c.0000000000000000000000000000001', 978326810, 'reader_0000_001', '0000010000010', 'step_001'),
    ('urn:epc:id:sgtin:c.0000000000000000000000000000002', 978326720, 'reader_0000_002', '0000010000020', 'step_001'),
    ('urn:epc:id:sgtin:c.0000000000000000000000000000002', 978326930, 'reader_0000_002', '0000010000020', 'step_002'),
    ('urn:epc:id:sgtin:c.0000000000000000000000000000001', 978326940, 'reader_0000_003', '0000010000010', 'step_002'),
    ('urn:epc:id:sgtin:c.0000000000000000000000000000003', 978326950, 'reader_0000_003', '0000010000030', 'step_001'),
]

RULES = [
    "DEFINE fuzz_incremental ON caser CLUSTER BY epc SEQUENCE BY rtime\nAS (A, B)\nWHERE a.biz_loc = b.biz_loc AND b.rtime - a.rtime < 600\nACTION DELETE B",
]

QUERY = QuerySpec(
    conjuncts=["c.rtime <= 978327000"],
    dimensions=[
    ],
)


def _case() -> FuzzCase:
    return FuzzCase(seed=11, iteration=0,
                    reads_rows=list(READS_ROWS), rules=list(RULES),
                    query=QUERY)


def test_shrunk_incremental_seed11() -> None:
    report = run_case(_case(), labels=("incremental",))
    assert report.ok, report.summary()
