"""Rule registry tests: ordering, persistence, views."""

import pytest

from repro.errors import RuleError
from repro.minidb import Database
from repro.sqlts import RuleRegistry
from repro.sqlts.registry import RULES_TABLE


def rule_text(name, table="t"):
    return f"""
        DEFINE {name} ON {table} CLUSTER BY k SEQUENCE BY s
        AS (A, B) WHERE A.x = B.x ACTION DELETE B"""


class TestOrdering:
    def test_rules_apply_in_creation_order(self):
        registry = RuleRegistry()
        registry.define(rule_text("second_alpha"))
        registry.define(rule_text("first_alpha"))
        names = [compiled.name for compiled in registry.rules_for("t")]
        assert names == ["second_alpha", "first_alpha"]

    def test_rules_for_filters_by_table(self):
        registry = RuleRegistry()
        registry.define(rule_text("r1", table="t"))
        registry.define(rule_text("r2", table="u"))
        assert [c.name for c in registry.rules_for("t")] == ["r1"]
        assert registry.tables_with_rules() == {"t", "u"}

    def test_duplicate_name_rejected(self):
        registry = RuleRegistry()
        registry.define(rule_text("r1"))
        with pytest.raises(RuleError, match="already defined"):
            registry.define(rule_text("r1"))

    def test_drop_and_clear(self):
        registry = RuleRegistry()
        registry.define(rule_text("r1"))
        registry.drop("r1")
        assert len(registry) == 0
        with pytest.raises(RuleError):
            registry.drop("r1")
        registry.define(rule_text("r2"))
        registry.clear()
        assert len(registry) == 0

    def test_rule_lookup(self):
        registry = RuleRegistry()
        registry.define(rule_text("r1"))
        assert registry.rule("R1").name == "r1"
        with pytest.raises(RuleError):
            registry.rule("nope")


class TestPersistence:
    def test_rules_table_created_and_populated(self):
        db = Database()
        registry = RuleRegistry(db)
        registry.define(rule_text("r1"))
        rows = db.execute(
            f"select rule_name, sql_template, created_at from {RULES_TABLE}")
        assert len(rows) == 1
        name, template, created = rows.rows[0]
        assert name == "r1"
        assert "{input}" in template
        assert created == 1

    def test_creation_counter_increments(self):
        db = Database()
        registry = RuleRegistry(db)
        registry.define(rule_text("r1"))
        registry.define(rule_text("r2"))
        created = db.execute(
            f"select created_at from {RULES_TABLE} order by created_at asc")
        assert created.column("created_at") == [1, 2]

    def test_existing_rules_table_reused(self):
        db = Database()
        RuleRegistry(db)
        RuleRegistry(db)  # second registry must not recreate the table
        assert RULES_TABLE in db.catalog


class TestViews:
    def test_view_round_trip(self):
        registry = RuleRegistry()
        registry.define_view("v", "select a from t")
        assert registry.view("V") is not None
        assert registry.view_sql("v") == "select a from t"
        assert registry.view("missing") is None
