"""Rule-compiler semantics: every §4.3 rule archetype applied to data.

Each test loads a tiny reads table, applies the compiled rule's plan
transform, and checks the exact surviving/modified rows. The SQL
template path is exercised by round-tripping the generated text through
the engine and comparing with the plan-transform result.
"""

import pytest

from repro.errors import RuleValidationError
from repro.minidb.plan.logical import LogicalScan, LogicalWindow
from repro.sqlts import compile_rule, parse_rule


def apply_rule(db, rule_text):
    compiled = compile_rule(parse_rule(rule_text))
    plan = compiled.apply(LogicalScan(db.table("r")))
    return compiled, db.execute(plan)


DUPLICATE = """
DEFINE dup ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
ACTION DELETE B
"""


class TestDuplicateRule:
    ROWS = [
        ("e1", 0, "rd", "a", "s"),
        ("e1", 100, "rd", "a", "s"),    # dup of previous (within 300s)
        ("e1", 500, "rd", "a", "s"),    # same loc but gap too big
        ("e1", 600, "rd", "b", "s"),    # different loc
        ("e2", 0, "rd", "a", "s"),      # different sequence
    ]

    def test_deletes_only_close_duplicates(self, reads_db):
        db = reads_db(self.ROWS)
        _, result = apply_rule(db, DUPLICATE)
        assert [(r[0], r[1]) for r in result] == [
            ("e1", 0), ("e1", 500), ("e1", 600), ("e2", 0)]

    def test_first_read_of_sequence_kept(self, reads_db):
        db = reads_db([("e1", 0, "rd", "a", "s")])
        _, result = apply_rule(db, DUPLICATE)
        assert len(result) == 1

    def test_chain_of_duplicates_keeps_first(self, reads_db):
        db = reads_db([("e1", t, "rd", "a", "s") for t in (0, 100, 200)])
        _, result = apply_rule(db, DUPLICATE)
        assert [r[1] for r in result] == [0]

    def test_output_schema_matches_input(self, reads_db):
        db = reads_db(self.ROWS)
        _, result = apply_rule(db, DUPLICATE)
        assert result.columns == ["epc", "rtime", "reader", "biz_loc",
                                  "biz_step"]


READER = """
DEFINE rdr ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins
ACTION DELETE A
"""


class TestReaderRule:
    def test_deletes_reads_shortly_before_readerx(self, reads_db):
        db = reads_db([
            ("e1", 0, "r0", "a", "s"),       # 500s before readerX: delete
            ("e1", 500, "readerX", "b", "s"),
            ("e1", 1500, "r0", "c", "s"),    # after readerX: keep
            ("e2", 0, "r0", "a", "s"),       # no readerX in sequence
        ])
        _, result = apply_rule(db, READER)
        assert {(r[0], r[1]) for r in result} == {
            ("e1", 500), ("e1", 1500), ("e2", 0)}

    def test_window_bound_strict(self, reads_db):
        db = reads_db([
            ("e1", 0, "r0", "a", "s"),
            ("e1", 600, "readerX", "b", "s"),   # exactly 10 min later
        ])
        _, result = apply_rule(db, READER)
        # B.rtime - A.rtime < 600 is strict: the read survives.
        assert len(result) == 2

    def test_existential_requires_same_row_match(self, reads_db):
        # A later read by another reader within the window and a readerX
        # read outside it must NOT combine to delete the row.
        db = reads_db([
            ("e1", 0, "r0", "a", "s"),
            ("e1", 100, "r1", "b", "s"),
            ("e1", 5000, "readerX", "c", "s"),
        ])
        _, result = apply_rule(db, READER)
        assert ("e1", 0, "r0", "a", "s") in result.as_set()

    def test_compiles_to_range_frame(self):
        compiled = compile_rule(parse_rule(READER))
        (name, function), = compiled.window_columns
        assert function.frame.mode == "range"
        assert function.frame.start == 1
        assert function.frame.end == 599


REPLACING = """
DEFINE rep ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B)
WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA'
  AND B.rtime - A.rtime < 20 mins
ACTION MODIFY A.biz_loc = 'loc1'
"""


class TestReplacingRule:
    def test_cross_read_relocated(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "loc2", "s"),
            ("e1", 60, "rd", "locA", "s"),
        ])
        _, result = apply_rule(db, REPLACING)
        assert result.column("biz_loc") == ["loc1", "locA"]

    def test_no_modify_outside_window(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "loc2", "s"),
            ("e1", 5000, "rd", "locA", "s"),
        ])
        _, result = apply_rule(db, REPLACING)
        assert result.column("biz_loc") == ["loc2", "locA"]

    def test_row_count_unchanged(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "loc2", "s"),
            ("e1", 60, "rd", "locA", "s"),
            ("e2", 0, "rd", "x", "s"),
        ])
        _, result = apply_rule(db, REPLACING)
        assert len(result) == 3


CYCLE = """
DEFINE cyc ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
ACTION DELETE B
"""


class TestCycleRule:
    def test_xyx_collapses_middle(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "X", "s"),
            ("e1", 100, "rd", "Y", "s"),
            ("e1", 200, "rd", "X", "s"),
        ])
        _, result = apply_rule(db, CYCLE)
        assert result.column("biz_loc") == ["X", "X"]

    def test_xyxyxy_reduces(self, reads_db):
        locs = ["X", "Y", "X", "Y", "X", "Y"]
        db = reads_db([("e1", i * 100, "rd", loc, "s")
                       for i, loc in enumerate(locs)])
        _, result = apply_rule(db, CYCLE)
        # Single application removes every read flanked by equal
        # neighbours: Y@1, X@2, Y@3, X@4 go; [X Y] remains.
        assert result.column("biz_loc") == ["X", "Y"]

    def test_no_cycle_untouched(self, reads_db):
        db = reads_db([("e1", i * 100, "rd", loc, "s")
                       for i, loc in enumerate(["X", "Y", "Z"])])
        _, result = apply_rule(db, CYCLE)
        assert len(result) == 3


KEEP = """
DEFINE keeper ON r CLUSTER BY epc SEQUENCE BY rtime
AS (A) WHERE A.biz_loc = 'keepme'
ACTION KEEP A
"""


class TestKeepAndSingleReference:
    def test_keep_filters_to_matching_rows(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "keepme", "s"),
            ("e1", 100, "rd", "other", "s"),
        ])
        compiled, result = apply_rule(db, KEEP)
        assert len(result) == 1
        # A single-reference rule needs no window computation at all.
        assert compiled.window_columns == []

    def test_keep_drops_unknown_condition_rows(self, reads_db):
        db = reads_db([("e1", 0, "rd", None, "s")])
        _, result = apply_rule(db, KEEP)
        assert len(result) == 0


class TestModifyCreatesColumns:
    def test_new_column_appended_with_default(self, reads_db):
        db = reads_db([
            ("e1", 0, "rd", "a", "s"),
            ("e1", 100, "rd", "a", "s"),
        ])
        compiled, result = apply_rule(db, """
            DEFINE flagger ON r CLUSTER BY epc SEQUENCE BY rtime
            AS (A, B) WHERE A.biz_loc = B.biz_loc
            ACTION MODIFY B.suspect = 1""")
        assert result.columns[-1] == "suspect"
        assert result.column("suspect") == [0, 1]


class TestCompilerErrors:
    def test_set_ref_cross_column_correlation_rejected(self):
        with pytest.raises(RuleValidationError, match="sequence-key"):
            compile_rule(parse_rule("""
                DEFINE bad ON r CLUSTER BY epc SEQUENCE BY rtime
                AS (A, *B) WHERE B.biz_loc = A.biz_loc
                ACTION DELETE A"""))

    def test_modify_cannot_read_set_reference(self):
        with pytest.raises(RuleValidationError, match="set reference"):
            compile_rule(parse_rule("""
                DEFINE bad ON r CLUSTER BY epc SEQUENCE BY rtime
                AS (A, *B) WHERE B.rtime - A.rtime < 5 mins
                ACTION MODIFY A.biz_loc = B.biz_loc"""))

    def test_aux_collision_detected_at_apply(self, reads_db):
        compiled = compile_rule(parse_rule(DUPLICATE))
        aux_name = compiled.window_columns[0][0]
        from repro.minidb import Database, SqlType, TableSchema
        db = Database()
        db.create_table("r", TableSchema.of(
            ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
            ("biz_loc", SqlType.VARCHAR), (aux_name, SqlType.INTEGER)))
        with pytest.raises(RuleValidationError, match="collides"):
            compiled.apply(LogicalScan(db.table("r")))


class TestSqlTemplate:
    @pytest.mark.parametrize("rule_text", [DUPLICATE, READER, REPLACING,
                                           CYCLE, KEEP])
    def test_template_agrees_with_plan_transform(self, reads_db, rule_text):
        rows = [
            ("e1", 0, "r0", "loc2", "s"),
            ("e1", 60, "readerX", "locA", "s"),
            ("e1", 120, "r0", "locA", "s"),
            ("e1", 400, "r0", "loc2", "s"),
            ("e1", 650, "r0", "keepme", "s"),
            ("e2", 0, "r0", "keepme", "s"),
            ("e2", 100, "r0", "keepme", "s"),
        ]
        db = reads_db(rows)
        compiled, via_plan = apply_rule(db, rule_text)
        template = compiled.sql_template(
            ["epc", "rtime", "reader", "biz_loc", "biz_step"])
        via_sql = db.execute(template.format(input="r"))
        assert sorted(via_sql.rows) == sorted(via_plan.rows)

    def test_template_contains_placeholder(self):
        compiled = compile_rule(parse_rule(DUPLICATE))
        assert "{input}" in compiled.sql_template(["epc", "rtime"])

    def test_required_columns(self):
        compiled = compile_rule(parse_rule(READER))
        assert compiled.required_columns() == {"epc", "rtime", "reader"}


class TestWindowSharingAcrossRules:
    def test_chained_rules_share_partition_order(self, reads_db):
        db = reads_db([("e1", i * 100, "rd", "a", "s") for i in range(4)])
        first = compile_rule(parse_rule(DUPLICATE))
        second = compile_rule(parse_rule(READER))
        plan = second.apply(first.apply(LogicalScan(db.table("r"))))
        windows = [node for node in plan.walk()
                   if isinstance(node, LogicalWindow)]
        assert len(windows) == 2
        keys = {(w.partition_by, w.order_by) for w in windows}
        assert len(keys) == 1  # same ordering requirement: one sort


class TestMinMatchesExtension:
    """The §4.3 count() extension: *B{k} requires at least k set rows."""

    RULE = """
        DEFINE two_rx ON r CLUSTER BY epc SEQUENCE BY rtime
        AS (A, *B{2})
        WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 mins
        ACTION DELETE A"""

    def test_parses_min_matches(self):
        rule = parse_rule(self.RULE)
        assert rule.pattern[1].min_matches == 2

    def test_two_matches_required(self, reads_db):
        db = reads_db([
            ("e1", 0, "r0", "a", "s"),
            ("e1", 100, "readerX", "b", "s"),
            ("e1", 200, "readerX", "c", "s"),
            ("e2", 0, "r0", "a", "s"),
            ("e2", 100, "readerX", "b", "s"),
        ])
        _, result = apply_rule(db, self.RULE)
        kept = {(row[0], row[1]) for row in result}
        assert ("e1", 0) not in kept  # two readerX follow: deleted
        assert ("e2", 0) in kept      # only one: kept

    def test_compiles_to_sum_window(self):
        compiled = compile_rule(parse_rule(self.RULE))
        (name, function), = compiled.window_columns
        assert function.name == "sum"
        assert ">= 2" in compiled.condition.to_sql()

    def test_default_threshold_still_uses_max(self):
        compiled = compile_rule(parse_rule(READER))
        (name, function), = compiled.window_columns
        assert function.name == "max"

    def test_qualifier_on_singleton_rejected(self):
        import pytest as _pytest
        from repro.errors import RuleValidationError
        with _pytest.raises(RuleValidationError, match="match-count"):
            parse_rule("""
                DEFINE bad ON r CLUSTER BY epc SEQUENCE BY rtime
                AS (A{2}, B) WHERE A.biz_loc = B.biz_loc
                ACTION DELETE B""")

    def test_zero_threshold_rejected(self):
        import pytest as _pytest
        from repro.errors import RuleValidationError
        with _pytest.raises(RuleValidationError, match="min_matches"):
            parse_rule("""
                DEFINE bad ON r CLUSTER BY epc SEQUENCE BY rtime
                AS (A, *B{0}) WHERE B.rtime - A.rtime < 10 mins
                ACTION DELETE A""")

    def test_rewrite_strategies_agree_with_threshold(self, reads_db):
        from repro.rewrite import DeferredCleansingEngine
        from repro.sqlts import RuleRegistry

        db = reads_db([
            ("e1", 0, "r0", "a", "s"),
            ("e1", 100, "readerX", "b", "s"),
            ("e1", 200, "readerX", "c", "s"),
            ("e2", 0, "r0", "a", "s"),
            ("e2", 100, "readerX", "b", "s"),
        ])
        registry = RuleRegistry(db)
        registry.define(self.RULE)
        engine = DeferredCleansingEngine(db, registry)
        sql = "select epc, rtime from r where rtime <= 150"
        naive = engine.execute(sql, strategies={"naive"}).as_set()
        for strategy in ("expanded", "joinback"):
            got = engine.execute(sql, strategies={strategy}).as_set()
            assert got == naive, strategy
