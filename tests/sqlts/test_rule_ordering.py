"""Rule-ordering semantics (§4.4): the paper's [X Y X] example.

"Consider the location of a sequence of tag reads given by [X Y X]. If
we apply the cycle rule first, followed by the duplicate rule (without
constraint on rtime), the cleaned sequence becomes [X] (first X). If we
switch the two rules, we get [X X] instead. In our system, rules are
ordered by their creation time and applied in this order."
"""

from repro.minidb.plan.logical import LogicalScan
from repro.rewrite import DeferredCleansingEngine
from repro.sqlts import RuleRegistry, compile_rule, parse_rule
from tests.conftest import make_reads_db

CYCLE_TEXT = """
    DEFINE cyc ON r CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
    ACTION DELETE B"""

DUP_TEXT = """
    DEFINE dup ON r CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B) WHERE A.biz_loc = B.biz_loc
    ACTION DELETE B"""

XYX = [("e1", 0, "rd", "X", "s"),
       ("e1", 100, "rd", "Y", "s"),
       ("e1", 200, "rd", "X", "s")]


def apply_chain(db, rule_texts):
    plan = LogicalScan(db.table("r"))
    for text in rule_texts:
        plan = compile_rule(parse_rule(text)).apply(plan)
    return [row[3] for row in db.execute(plan)]


class TestPaperExample:
    def test_cycle_then_duplicate_yields_single_x(self):
        db = make_reads_db(XYX)
        assert apply_chain(db, [CYCLE_TEXT, DUP_TEXT]) == ["X"]

    def test_duplicate_then_cycle_yields_two_x(self):
        db = make_reads_db(XYX)
        # Duplicate rule looks at *adjacent* reads: X,Y and Y,X are not
        # duplicates, so nothing is deleted; then the cycle rule removes
        # Y, leaving [X X].
        assert apply_chain(db, [DUP_TEXT, CYCLE_TEXT]) == ["X", "X"]


class TestEngineHonoursCreationOrder:
    def _engine(self, first_text, second_text):
        db = make_reads_db(XYX)
        registry = RuleRegistry(db)
        registry.define(first_text)
        registry.define(second_text)
        return DeferredCleansingEngine(db, registry)

    def test_cycle_created_first(self):
        engine = self._engine(CYCLE_TEXT, DUP_TEXT)
        rows = engine.execute("select biz_loc from r",
                              strategies={"naive"})
        assert rows.column("biz_loc") == ["X"]

    def test_duplicate_created_first(self):
        engine = self._engine(DUP_TEXT, CYCLE_TEXT)
        rows = engine.execute("select biz_loc from r",
                              strategies={"naive"})
        assert rows.column("biz_loc") == ["X", "X"]

    def test_joinback_respects_order_too(self):
        engine = self._engine(CYCLE_TEXT, DUP_TEXT)
        rows = engine.execute("select biz_loc from r",
                              strategies={"joinback"})
        assert rows.column("biz_loc") == ["X"]
