"""Extended SQL-TS grammar tests."""

import pytest

from repro.errors import RuleSyntaxError, RuleValidationError
from repro.minidb.expressions import Literal
from repro.sqlts import parse_rule
from repro.sqlts.model import ActionKind


DUPLICATE = """
DEFINE duplicate ON caseR FROM caseR CLUSTER BY epc SEQUENCE BY rtime
AS (A, B)
WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 mins
ACTION DELETE B
"""


class TestParsing:
    def test_full_rule(self):
        rule = parse_rule(DUPLICATE)
        assert rule.name == "duplicate"
        assert rule.on_table == "caser"
        assert rule.from_table == "caser"
        assert rule.cluster_key == "epc"
        assert rule.sequence_key == "rtime"
        assert [ref.name for ref in rule.pattern] == ["a", "b"]
        assert rule.action.kind is ActionKind.DELETE
        assert rule.action.target == "b"

    def test_from_defaults_to_on(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A, B) WHERE A.x = B.x ACTION DELETE B""")
        assert rule.from_table == "t"

    def test_from_can_differ(self):
        rule = parse_rule("""
            DEFINE r ON t FROM t_view CLUSTER BY k SEQUENCE BY s
            AS (A, B) WHERE A.x = B.x ACTION DELETE B""")
        assert rule.from_table == "t_view"

    def test_set_reference(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A, *B) WHERE B.x = 1 AND B.s - A.s < 10 ACTION DELETE A""")
        assert rule.pattern[1].is_set
        assert not rule.pattern[0].is_set

    def test_keep_action(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A) WHERE A.x = 1 ACTION KEEP A""")
        assert rule.action.kind is ActionKind.KEEP

    def test_modify_action_single(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A, B) WHERE A.x = B.x ACTION MODIFY A.loc = 'fixed'""")
        assert rule.action.kind is ActionKind.MODIFY
        assert rule.action.assignments == {"loc": Literal("fixed")}

    def test_modify_multiple_assignments(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A, B) WHERE A.x = B.x
            ACTION MODIFY A.loc = 'fixed', A.flag = 1""")
        assert set(rule.action.assignments) == {"loc", "flag"}

    def test_case_insensitive_keywords(self):
        rule = parse_rule(DUPLICATE.lower())
        assert rule.name == "duplicate"

    def test_interval_shorthand_in_condition(self):
        rule = parse_rule(DUPLICATE)
        assert "300" in rule.condition.to_sql()


class TestSyntaxErrors:
    @pytest.mark.parametrize("text", [
        "ON t CLUSTER BY k SEQUENCE BY s AS (A) WHERE A.x=1 ACTION KEEP A",
        "DEFINE r ON t SEQUENCE BY s AS (A) WHERE A.x=1 ACTION KEEP A",
        "DEFINE r ON t CLUSTER BY k AS (A) WHERE A.x=1 ACTION KEEP A",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s WHERE A.x=1 ACTION KEEP A",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A) ACTION KEEP A",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A) WHERE A.x=1",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS () WHERE x=1 "
        "ACTION KEEP A",
    ])
    def test_missing_clause_rejected(self, text):
        with pytest.raises(RuleSyntaxError):
            parse_rule(text)

    def test_mixed_modify_targets_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, B) WHERE A.x = B.x
                ACTION MODIFY A.loc = 'x', B.loc = 'y'""")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule(DUPLICATE + " EXTRA TOKENS (")


class TestValidation:
    def test_set_ref_must_be_at_pattern_end(self):
        with pytest.raises(RuleValidationError, match="first or last"):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, *B, C) WHERE A.x = C.x ACTION DELETE A""")

    def test_target_must_exist(self):
        with pytest.raises(RuleValidationError, match="not a pattern"):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, B) WHERE A.x = B.x ACTION DELETE Z""")

    def test_target_cannot_be_set_reference(self):
        with pytest.raises(RuleValidationError, match="singleton"):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, *B) WHERE B.x = 1 ACTION DELETE B""")

    def test_duplicate_reference_names(self):
        with pytest.raises(RuleValidationError, match="duplicate"):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, A) WHERE A.x = 1 ACTION DELETE A""")

    def test_unknown_reference_in_condition(self):
        with pytest.raises(RuleValidationError, match="unknown pattern"):
            parse_rule("""
                DEFINE r ON t CLUSTER BY k SEQUENCE BY s
                AS (A, B) WHERE A.x = Z.x ACTION DELETE A""")


class TestModelAccessors:
    def test_target_and_contexts(self):
        rule = parse_rule(DUPLICATE)
        assert rule.target.name == "b"
        assert [ref.name for ref in rule.context_references] == ["a"]

    def test_offsets(self):
        rule = parse_rule("""
            DEFINE cycle ON t CLUSTER BY k SEQUENCE BY s
            AS (A, B, C) WHERE A.x = C.x AND A.x != B.x ACTION DELETE B""")
        a, b, c = rule.pattern
        assert rule.offset_of(a) == -1
        assert rule.offset_of(c) == 1

    def test_columns_of(self):
        rule = parse_rule(DUPLICATE)
        assert rule.columns_of("a") == {"biz_loc", "rtime"}
        assert rule.columns_of("b") == {"biz_loc", "rtime"}

    def test_columns_of_includes_modify_values(self):
        rule = parse_rule("""
            DEFINE r ON t CLUSTER BY k SEQUENCE BY s
            AS (A, B) WHERE A.x = 1 ACTION MODIFY A.y = B.z""")
        assert "z" in rule.columns_of("b")

    def test_describe_mentions_action(self):
        assert "DELETE B" in parse_rule(DUPLICATE).describe()
