"""Fixpoint rule application: arbitrary-length cycles and convergence."""

import pytest

from repro.errors import RuleError
from repro.sqlts import compile_rule, parse_rule
from repro.sqlts.fixpoint import apply_to_fixpoint
from tests.conftest import make_reads_db

CYCLE = compile_rule(parse_rule("""
    DEFINE cyc ON r CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc != B.biz_loc
    ACTION DELETE B"""))

DUPLICATE = compile_rule(parse_rule("""
    DEFINE dup ON r CLUSTER BY epc SEQUENCE BY rtime
    AS (A, B) WHERE A.biz_loc = B.biz_loc
    ACTION DELETE B"""))


def locations(result):
    position = result.result.columns.index("biz_loc")
    return [row[position] for row in result.result.rows]


def db_with_locations(locs):
    return make_reads_db([("e1", i * 100, "rd", loc, "s")
                          for i, loc in enumerate(locs)])


class TestArbitraryCycles:
    def test_single_pass_suffices_for_xyx(self):
        db = db_with_locations(["X", "Y", "X"])
        result = apply_to_fixpoint(db, [CYCLE], "r")
        assert result.converged
        assert result.iterations == 2  # one change + one confirming pass
        assert locations(result) == ["X", "X"]

    def test_nested_cycle_needs_iteration(self):
        # [X Y Z Y X]: one pass removes Z (Y_Z_Y); the next sees [X Y Y X]
        # (no flanked rows: Y's neighbours are X,Y and Y,X)... the nested
        # X-cycle emerges only after deduplication, so combine both rules.
        db = db_with_locations(["X", "Y", "Z", "Y", "X"])
        result = apply_to_fixpoint(db, [CYCLE, DUPLICATE], "r")
        assert result.converged
        assert locations(result) == ["X"]

    def test_long_alternation_collapses(self):
        db = db_with_locations(["X", "Y"] * 5)
        result = apply_to_fixpoint(db, [CYCLE], "r")
        assert result.converged
        assert locations(result) == ["X", "Y"]

    def test_stable_input_converges_in_one_pass(self):
        db = db_with_locations(["X", "Y", "Z"])
        result = apply_to_fixpoint(db, [CYCLE], "r")
        assert result.converged
        assert result.iterations == 1
        assert locations(result) == ["X", "Y", "Z"]

    def test_source_table_untouched(self):
        db = db_with_locations(["X", "Y", "X"])
        apply_to_fixpoint(db, [CYCLE], "r")
        assert len(db.table("r")) == 3
        assert "_fixpoint_r" not in db.catalog

    def test_iteration_bound(self):
        db = db_with_locations(["X", "Y"] * 8)
        result = apply_to_fixpoint(db, [CYCLE], "r", max_iterations=1)
        assert not result.converged
        assert result.iterations == 1

    def test_requires_rules(self):
        db = db_with_locations(["X"])
        with pytest.raises(RuleError):
            apply_to_fixpoint(db, [], "r")

    def test_modify_rules_supported(self):
        relabel = compile_rule(parse_rule("""
            DEFINE relabel ON r CLUSTER BY epc SEQUENCE BY rtime
            AS (A, B) WHERE A.biz_loc = 'X' AND B.biz_loc = 'Y'
            ACTION MODIFY A.biz_loc = 'Y'"""))
        # X X X Y -> each pass turns the X adjacent to a Y into Y.
        db = db_with_locations(["X", "X", "X", "Y"])
        result = apply_to_fixpoint(db, [relabel], "r")
        assert result.converged
        assert locations(result) == ["Y", "Y", "Y", "Y"]
