"""Smoke tests for the experiment harness at tiny scale."""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments import fig7, fig8, fig9, plans, table1
from repro.experiments.common import run_variants, workbench_for
from repro.experiments.eager import run as run_eager

TINY = ExperimentSettings(scale=3, anomaly_percent=10.0)


@pytest.fixture(scope="module")
def tiny_bench():
    return workbench_for(TINY, rule_names=("reader",))


class TestRunVariants:
    def test_all_variants_timed(self, tiny_bench):
        timings = run_variants(tiny_bench, tiny_bench.q1(0.20), "20%")
        assert set(timings.elapsed) == {"q", "q_e", "q_j", "q_n"}
        assert all(value >= 0 for value in timings.elapsed.values())
        assert timings.chosen is not None

    def test_infeasible_variant_skipped(self):
        bench = workbench_for(TINY)  # all five rules: expanded infeasible
        timings = run_variants(bench, bench.q1(0.20), "x")
        assert "q_e" not in timings.elapsed
        assert "q_j" in timings.elapsed

    def test_row_renders(self, tiny_bench):
        timings = run_variants(tiny_bench, tiny_bench.q1(0.20), "20%")
        row = timings.row()
        assert row.startswith("20%")

    def test_workbench_cache_reuses_database(self):
        first = workbench_for(TINY, rule_names=("reader",))
        second = workbench_for(TINY, rule_names=("reader", "duplicate"))
        assert first.database is second.database


class TestHarnesses:
    def test_fig7_structure(self):
        results = fig7.run(TINY, selectivities=(0.20,), queries=("q1",))
        assert list(results) == ["q1"]
        assert results["q1"][0].label == "20%"

    def test_fig8_structure(self):
        series = fig8.run(TINY, selectivities=(0.20,))
        assert len(series) == 1

    def test_fig9_rules_structure(self):
        results = fig9.run_rules(TINY, queries=("q2",))
        assert len(results["q2"]) == 5
        # Expanded disappears from the fourth rule on.
        assert "q_e" in results["q2"][2].elapsed
        assert "q_e" not in results["q2"][3].elapsed

    def test_fig9_dirty_structure(self):
        results = fig9.run_dirty(TINY, queries=("q2",), levels=(10.0,))
        assert len(results["q2"]) == 1

    def test_plans_cover_all_five_figures(self):
        collected = plans.collect_plans(TINY)
        assert len(collected) == 5
        assert any("presorted" in text for text in collected.values())

    def test_table1_feasibility_structure(self):
        bench = workbench_for(TINY)
        rtimes = bench.case_rtimes()
        table = table1.table1_conditions(bench, min(rtimes), max(rtimes))
        assert table["cycle"] == {"q1": "{}", "q2": "{}"}
        assert table["missing"]["q1"] == "{}"

    def test_eager_reports_break_even(self):
        results = run_eager(TINY, selectivity=0.20)
        assert results["materialize"] > 0
        assert results["break_even_queries"] > 0


class TestScorecard:
    def test_all_claims_pass_at_small_scale(self):
        from repro.experiments.summary import run_scorecard

        checks = run_scorecard(ExperimentSettings(scale=8,
                                                  anomaly_percent=10.0))
        timing_sensitive = {"S3 rewrites beat naive",
                            "S7 q2' erodes join-back advantage",
                            "S8 anomaly growth is mild"}
        for claim, passed in checks.items():
            if claim in timing_sensitive:
                continue  # wall-clock claims are asserted in benchmarks
            assert passed, claim
