"""Workload tests: selectivity pickers, queries, rules, the Workbench."""

import pytest

from repro.errors import DataGenError
from repro.minidb.sqlparse import parse_select
from repro.workloads import (
    q1_sql,
    q2_prime_sql,
    q2_sql,
    rule_texts,
    timestamp_for_fraction_above,
    timestamp_for_fraction_below,
)
from repro.workloads.rules import STANDARD_RULE_ORDER


class TestSelectivityPickers:
    TIMES = list(range(0, 1000, 10))

    def test_below_hits_fraction(self):
        t = timestamp_for_fraction_below(self.TIMES, 0.10)
        below = sum(1 for x in self.TIMES if x <= t)
        assert below == pytest.approx(0.10 * len(self.TIMES), abs=1)

    def test_above_hits_fraction(self):
        t = timestamp_for_fraction_above(self.TIMES, 0.25)
        above = sum(1 for x in self.TIMES if x >= t)
        assert above == pytest.approx(0.25 * len(self.TIMES), abs=1)

    def test_full_fraction(self):
        assert timestamp_for_fraction_below(self.TIMES, 1.0) \
            == max(self.TIMES)

    def test_bad_fraction_rejected(self):
        with pytest.raises(DataGenError):
            timestamp_for_fraction_below(self.TIMES, 0.0)
        with pytest.raises(DataGenError):
            timestamp_for_fraction_above(self.TIMES, 1.5)

    def test_empty_input_rejected(self):
        with pytest.raises(DataGenError):
            timestamp_for_fraction_below([], 0.5)


class TestQueryTexts:
    def test_queries_parse(self):
        for sql in (q1_sql(1000), q2_sql(1000), q2_prime_sql(1000)):
            parse_select(sql)

    def test_q1_mentions_window(self):
        assert "over" in q1_sql(5).lower()

    def test_q2_joins_four_dimensions(self):
        stmt = parse_select(q2_sql(5))
        assert len(stmt.from_refs) == 5  # caseR + 4 dims

    def test_q2_prime_swaps_predicate(self):
        assert "site = " not in q2_prime_sql(5)
        assert "type = " in q2_prime_sql(5)


class TestWorkbench:
    def test_rules_compile_for_generated_data(self, clean_bench):
        texts = rule_texts(clean_bench.data)
        assert set(texts) == set(STANDARD_RULE_ORDER)
        assert len(clean_bench.registry) == 6  # missing splits into r1+r2

    def test_rule_order_is_table1_order(self, clean_bench):
        names = [c.name for c in clean_bench.registry.rules_for("caser")]
        assert names == ["reader_rule", "duplicate_rule", "replacing_rule",
                         "cycle_rule", "missing_rule_r1", "missing_rule_r2"]

    def test_q1_selectivity_is_respected(self, clean_bench):
        sql = clean_bench.q1(0.10)
        total = len(clean_bench.data.case_reads)
        t1 = int(sql.split("rtime <= ")[1].split(")")[0])
        selected = sum(1 for row in clean_bench.data.case_reads
                       if row[1] <= t1)
        assert selected / total == pytest.approx(0.10, abs=0.01)

    def test_with_rules_subset(self, clean_bench):
        subset = clean_bench.with_rules(("reader", "duplicate"))
        assert len(subset.registry) == 2
        assert subset.database is clean_bench.database

    def test_default_site_exists(self, clean_bench):
        sites = {row[1] for row in clean_bench.data.location_rows}
        assert clean_bench.default_site() in sites

    def test_clean_data_unchanged_by_cleansing(self, clean_bench):
        """On anomaly-free data the rules must be (near) no-ops: no
        duplicates, no readerX, no cross reads, no cycles, no missing
        reads exist to correct."""
        engine = clean_bench.with_rules(
            ("reader", "duplicate", "replacing")).engine
        sql = clean_bench.q1(0.05)
        cleansed = engine.execute(sql, strategies={"expanded"}).as_set()
        raw = clean_bench.database.execute(sql).as_set()
        assert cleansed == raw


class TestDirtyWorkbench:
    @pytest.mark.parametrize("query_name", ["q1", "q2", "q2_prime"])
    def test_strategies_agree_on_generated_data(self, dirty_bench,
                                                query_name):
        bench = dirty_bench.with_rules(("reader", "duplicate", "replacing"))
        sql = getattr(bench, query_name)(0.08)
        naive = bench.engine.execute(sql, strategies={"naive"}).as_set()
        for strategy in ("expanded", "joinback"):
            got = bench.engine.execute(sql, strategies={strategy}).as_set()
            assert got == naive, (query_name, strategy)

    def test_five_rule_chain_agrees(self, dirty_bench):
        sql = dirty_bench.q1(0.08)
        naive = dirty_bench.engine.execute(
            sql, strategies={"naive"}).as_set()
        joinback = dirty_bench.engine.execute(
            sql, strategies={"joinback"}).as_set()
        assert joinback == naive

    def test_dirty_query_differs_from_cleansed(self, dirty_bench):
        """The motivation: anomalies visibly corrupt analytical answers."""
        sql = dirty_bench.q1(0.30)
        dirty = dirty_bench.database.execute(sql).as_set()
        cleansed = dirty_bench.engine.execute(
            sql, strategies={"joinback"}).as_set()
        assert dirty != cleansed

    def test_missing_rule_compensates_from_pallets(self, dirty_bench):
        """Cleansed data has more rows than dirty-minus-deletions thanks
        to pallet-based compensation of missing reads."""
        bench = dirty_bench
        with_missing = bench.engine.execute(
            "select count(*) from caser", strategies={"naive"}).scalar()
        without_missing = bench.with_rules(
            ("reader", "duplicate", "replacing", "cycle")).engine.execute(
            "select count(*) from caser", strategies={"naive"}).scalar()
        assert with_missing > without_missing
