"""The REPRO_* knob registry: typos fail loudly (satellite 2)."""

from __future__ import annotations

import warnings

import pytest

from repro import knobs
from repro.minidb import Database


@pytest.fixture
def fresh_latch(monkeypatch):
    """Reset the one-shot validation latch for the test."""
    monkeypatch.setattr(knobs, "_validated", False)


def test_typo_warns_with_suggestion(fresh_latch, monkeypatch):
    monkeypatch.setenv("REPRO_WORKER", "2")  # typo for REPRO_WORKERS
    with pytest.warns(knobs.UnknownKnobWarning,
                      match=r"REPRO_WORKER \(did you mean "
                            r"REPRO_WORKERS\?\)"):
        unknown = knobs.validate_environment(force=True)
    assert unknown == ["REPRO_WORKER"]


def test_database_construction_validates(fresh_latch, monkeypatch):
    monkeypatch.setenv("REPRO_BATCHSIZE", "7")
    with pytest.warns(knobs.UnknownKnobWarning):
        Database()


def test_known_knobs_stay_silent(fresh_latch, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "0")
    monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert knobs.validate_environment(force=True) == []


def test_warning_is_one_shot(fresh_latch, monkeypatch):
    monkeypatch.setenv("REPRO_WRONG", "1")
    with pytest.warns(knobs.UnknownKnobWarning):
        knobs.validate_environment(force=True)
    # The latch is set now: the same unknown name no longer warns, but
    # it is still reported to callers that ask.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert knobs.validate_environment() == ["REPRO_WRONG"]


def test_every_server_knob_is_registered():
    for name in ("REPRO_SERVE_WORKERS", "REPRO_SERVE_INFLIGHT",
                 "REPRO_SERVE_SESSION_DEPTH"):
        assert name in knobs.KNOWN_KNOBS


def test_registry_matches_readme():
    """Every registered knob is documented in the README."""
    from pathlib import Path

    readme = (Path(__file__).resolve().parent.parent
              / "README.md").read_text(encoding="utf-8")
    missing = [name for name in knobs.KNOWN_KNOBS if name not in readme]
    assert not missing, f"knobs undocumented in README: {missing}"
