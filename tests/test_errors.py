"""Error-hierarchy tests: one base class, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        leaves = [
            errors.CatalogError, errors.SchemaError,
            errors.TypeMismatchError, errors.SqlSyntaxError,
            errors.PlanningError, errors.ExecutionError,
            errors.RuleSyntaxError, errors.RuleValidationError,
            errors.RewriteError, errors.DataGenError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_minidb_errors_grouped(self):
        for leaf in (errors.CatalogError, errors.SchemaError,
                     errors.SqlSyntaxError, errors.PlanningError,
                     errors.ExecutionError):
            assert issubclass(leaf, errors.MiniDbError)

    def test_rule_errors_grouped(self):
        for leaf in (errors.RuleSyntaxError, errors.RuleValidationError):
            assert issubclass(leaf, errors.RuleError)

    def test_syntax_error_carries_location(self):
        error = errors.SqlSyntaxError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_syntax_error_without_location(self):
        error = errors.SqlSyntaxError("bad token")
        assert error.line is None
        assert "line" not in str(error)


class TestCatchability:
    def test_one_except_clause_covers_the_library(self):
        from repro.minidb import Database, SqlType, TableSchema

        db = Database()
        with pytest.raises(errors.ReproError):
            db.table("missing")
        with pytest.raises(errors.ReproError):
            db.execute("select broken syntax from")
        db.create_table("t", TableSchema.of(("a", SqlType.INTEGER)))
        with pytest.raises(errors.ReproError):
            db.execute("select nope from t")
        with pytest.raises(errors.ReproError):
            db.load("t", [("not-an-int",)])
