"""Optimizer-equivalence property tests.

Every planner feature (predicate pushdown, index access paths, order
sharing, sliding windows) is an *optimization*: turning it off must
never change query results. Random queries over random data are run
with each toggle flipped and compared against the all-off baseline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema

SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("biz_loc", SqlType.VARCHAR),
    ("v", SqlType.INTEGER),
)

ROWS = st.lists(
    st.tuples(st.sampled_from(["e1", "e2", "e3"]),
              st.integers(0, 200),
              st.sampled_from(["x", "y", "z"]),
              st.one_of(st.none(), st.integers(-5, 5))),
    min_size=0, max_size=30)

# Query templates exercising filters across windows, joins, grouping,
# subqueries, and set operations.
QUERIES = st.sampled_from([
    "select epc, rtime from t where rtime <= {t} and biz_loc != 'x'",
    "select biz_loc, count(*) as n, sum(v) as s from t "
    "where rtime >= {t} group by biz_loc",
    "with w as (select epc, rtime, max(v) over (partition by epc "
    "order by rtime asc rows between 1 preceding and 1 preceding) as pv "
    "from t) select * from w where rtime <= {t}",
    "with w as (select epc, biz_loc, max(rtime) over (partition by epc "
    "order by rtime asc) as mt from t) "
    "select * from w where epc = 'e1'",
    "select a.epc, b.v from t a, t b "
    "where a.epc = b.epc and a.rtime < b.rtime and a.rtime <= {t}",
    "select epc from t where epc in "
    "(select epc from t where v > 0) and rtime <= {t}",
    "select epc, rtime from t where rtime <= {t} "
    "union all select epc, rtime from t where v is null",
    "select distinct biz_loc from t where rtime >= {t}",
    "select epc, count(distinct biz_loc) as locs from t group by epc "
    "having count(*) > 1",
])

BASELINE = PlannerOptions(use_indexes=False, order_sharing=False,
                          naive_windows=True, push_filters=False)

VARIATIONS = [
    PlannerOptions(),  # everything on
    PlannerOptions(use_indexes=False),
    PlannerOptions(order_sharing=False),
    PlannerOptions(push_filters=False),
    PlannerOptions(naive_windows=True),
]


def _database(rows):
    db = Database()
    db.create_table("t", SCHEMA)
    db.load("t", rows)
    db.create_index("t", "rtime")
    db.create_index("t", "epc")
    return db


@settings(max_examples=60, deadline=None)
@given(rows=ROWS, template=QUERIES, t=st.integers(0, 200))
def test_optimizations_never_change_results(rows, template, t):
    db = _database(rows)
    sql = template.format(t=t)
    baseline = sorted(db.execute(sql, options=BASELINE).rows,
                      key=repr)
    for options in VARIATIONS:
        got = sorted(db.execute(sql, options=options).rows, key=repr)
        assert got == baseline, options


@settings(max_examples=40, deadline=None)
@given(rows=ROWS, t=st.integers(0, 200))
def test_window_barrier_is_semantic_not_cosmetic(rows, t):
    """Filtering a CTE containing a window must equal filtering the
    window's materialized output in Python."""
    db = _database(rows)
    sql = ("with w as (select epc, rtime, "
           "count(*) over (partition by epc order by rtime asc "
           "rows between unbounded preceding and current row) as rn "
           f"from t) select epc, rtime, rn from w where rtime <= {t}")
    via_engine = sorted(db.execute(sql).rows)
    unfiltered = db.execute(
        "with w as (select epc, rtime, count(*) over (partition by epc "
        "order by rtime asc rows between unbounded preceding and "
        "current row) as rn from t) select epc, rtime, rn from w")
    expected = sorted(row for row in unfiltered.rows if row[1] <= t)
    assert via_engine == expected
