"""Crash-recovery test rig: kill writes at fault points, then recover.

Every scenario follows the same protocol:

1. Build a disk database, checkpoint it (``shutdown``), and reopen.
2. Arm one fault point via ``REPRO_STORAGE_CRASH=<point>[:n]`` and apply
   append batches until the simulated power cut
   (:class:`InjectedCrash`) fires.
3. Abandon the database exactly as the crash left the files
   (``simulate_crash`` — nothing is flushed or closed cleanly).
4. Reopen the same directory and assert the recovered state equals
   **exactly the last committed epoch**: every batch whose WAL COMMIT
   record hit the disk, nothing from the batch in flight — byte-for-byte
   identical to a memory-backend mirror fed the committed batches.

Which side of the line the in-flight batch lands on is determined by
the fault point: the WAL commit record is fsync'd *before* pages are
touched, so a crash during page application (``page-torn``,
``page-flush``) or after the commit record (``wal-after-commit``) must
recover the batch, while a crash before the commit record
(``wal-record-torn``, ``wal-before-commit``) must lose it.
"""

from __future__ import annotations

import pytest

from repro.minidb.engine import Database
from repro.minidb.index import IndexRange
from repro.minidb.schema import TableSchema
from repro.minidb.storage import faults
from repro.minidb.storage.faults import InjectedCrash
from repro.minidb.types import SqlType

READS = TableSchema.of(
    ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
    ("loc", SqlType.INTEGER), ("v", SqlType.DOUBLE),
    ("ok", SqlType.BOOLEAN), ("rtime", SqlType.TIMESTAMP))

#: 150 rows ≈ 14 pages at page_size=512 — comfortably above the 8-page
#: pool, so every batch forces dirty evictions (page fault points fire).
BATCH_ROWS = 150

QUERY = ("SELECT epc, COUNT(*) AS n, SUM(loc) AS total, MIN(id) AS lo "
         "FROM reads GROUP BY epc ORDER BY epc")

#: Fault points where the in-flight batch's COMMIT record is already
#: durable when the crash fires, so recovery must redo the batch.
COMMITS_CURRENT = ("wal-after-commit", "page-torn", "page-flush")

#: (crash spec, append batch count) matrix. ``:n`` arms the n-th hit so
#: later batches crash too; checkpoint points fire at the explicit
#: checkpoint after all appends succeeded.
MATRIX = [
    ("wal-record-torn", 1),
    ("wal-record-torn:3", 3),
    ("wal-before-commit", 1),
    ("wal-before-commit:2", 3),
    ("wal-after-commit", 1),
    ("wal-after-commit:3", 3),
    ("page-torn", 1),
    ("page-torn:9", 3),
    ("page-flush", 1),
    ("page-flush:11", 3),
    ("checkpoint-before-manifest", 1),
    ("checkpoint-before-manifest", 3),
    ("checkpoint-after-manifest", 1),
    ("checkpoint-after-manifest", 3),
]


def _batch(ordinal: int) -> list[tuple]:
    base = ordinal * BATCH_ROWS
    return [(base + i, f"epc{(base + i) % 13}", (base + i) % 7,
             (base + i) * 0.5, (base + i) % 2 == 0, 1_000_000 + base + i)
            for i in range(BATCH_ROWS)]


def _new(path: str) -> Database:
    return Database(storage="disk", storage_path=path,
                    buffer_pages=8, page_size=512)


def _mirror(batches: list[list[tuple]]) -> Database:
    db = Database()  # memory backend: the recovery oracle
    db.create_table("reads", READS)
    db.load("reads", batches[0])
    db.create_index("reads", "epc")
    for batch in batches[1:]:
        db.append("reads", batch)
    return db


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faults.CRASH_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _assert_recovered_equals(recovered: Database,
                             committed: list[list[tuple]]) -> None:
    mirror = _mirror(committed)
    expected_rows = [row for batch in committed for row in batch]
    assert list(recovered.table("reads").scan()) == expected_rows
    assert recovered.execute(QUERY).rows == mirror.execute(QUERY).rows
    disk_index = recovered.table("reads").index_on("epc")
    memory_index = mirror.table("reads").index_on("epc")
    disk_index.tree.check_invariants()
    everything = IndexRange()
    assert list(disk_index.scan(everything)) == \
        list(memory_index.scan(everything))


@pytest.mark.parametrize("spec,batches", MATRIX)
def test_crash_recovers_last_committed_epoch(tmp_path, monkeypatch,
                                             spec, batches):
    point = spec.partition(":")[0]
    assert point in faults.ALL_POINTS
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.shutdown()  # checkpoint: the manifest now references every page

    db = _new(path)
    monkeypatch.setenv(faults.CRASH_ENV, spec)
    applied: list[list[tuple]] = []
    attempted: list[tuple] | None = None
    crashed: InjectedCrash | None = None
    try:
        for ordinal in range(batches):
            attempted = _batch(ordinal + 1)
            db.append("reads", attempted)
            applied.append(attempted)
            attempted = None
        db.checkpoint()  # the checkpoint-* fault points fire here
    except InjectedCrash as crash:
        crashed = crash
    assert crashed is not None, f"{spec} never fired"
    assert crashed.point == point
    db.storage.simulate_crash()

    committed = [initial, *applied]
    if attempted is not None and point in COMMITS_CURRENT:
        committed.append(attempted)

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        _assert_recovered_equals(recovered, committed)
    finally:
        recovered.shutdown()


#: Group-commit crash scenarios: ``(crash spec, batches, group spec)``.
#: Both fault points fire *after* the COMMIT record was pwritten, and
#: the simulated power cut preserves every written byte, so the
#: in-flight batch always recovers — deferring the fsync must never
#: change which epoch-consistent prefix recovery lands on.
GROUP_MATRIX = [
    ("wal-group-pending", 1, "4"),
    ("wal-group-pending:3", 3, "4"),
    ("wal-group-sync", 2, "2"),
    ("wal-group-sync:2", 4, "2"),
    ("wal-group-pending:2", 2, "50ms"),
]


@pytest.mark.parametrize("spec,batches,group", GROUP_MATRIX)
def test_group_commit_crash_recovers_committed_prefix(tmp_path,
                                                      monkeypatch, spec,
                                                      batches, group):
    point = spec.partition(":")[0]
    assert point in faults.ALL_POINTS
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.shutdown()

    db = Database(storage="disk", storage_path=path, buffer_pages=8,
                  page_size=512, group_commit=group)
    assert db.storage.wal.group_enabled
    monkeypatch.setenv(faults.CRASH_ENV, spec)
    applied: list[list[tuple]] = []
    crashed: InjectedCrash | None = None
    try:
        for ordinal in range(batches):
            attempted = _batch(ordinal + 1)
            db.append("reads", attempted)
            applied.append(attempted)
    except InjectedCrash as crash:
        applied.append(attempted)  # commit record hit disk before crash
        crashed = crash
    assert crashed is not None, f"{spec} never fired"
    assert crashed.point == point
    db.storage.simulate_crash()

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        _assert_recovered_equals(recovered, [initial, *applied])
    finally:
        recovered.shutdown()


def test_compaction_move_crash_recovers(tmp_path, monkeypatch):
    """A crash mid-compaction must leave the old manifest + WAL intact.

    Move targets come only from pages freed before the current manifest
    was written, so the relocated copies land on pages neither the old
    manifest nor WAL replay reads: recovery after ``compaction-move``
    behaves exactly like one after ``checkpoint-before-manifest``.
    """
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.shutdown()

    db = _new(path)
    replacement = [row for row in initial if row[0] % 3 == 0]
    db.table("reads").replace_rows(replacement, coerced=False)
    db.checkpoint()  # retired pages become free: compaction candidates
    # Small enough to leave free holes below the live tail pages, so
    # the next checkpoint actually plans moves.
    appended = _batch(1)[:20]
    db.append("reads", appended)  # committed before the crash below
    monkeypatch.setenv(faults.CRASH_ENV, "compaction-move")
    with pytest.raises(InjectedCrash):
        db.checkpoint()
    db.storage.simulate_crash()

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        expected = replacement + appended
        assert list(recovered.table("reads").scan()) == expected
        index = recovered.table("reads").index_on("epc")
        index.tree.check_invariants()
        assert recovered.execute(QUERY).rows
    finally:
        recovered.shutdown()


def test_ddl_and_drops_replay_from_wal(tmp_path, monkeypatch):
    """CREATE TABLE / CREATE INDEX / DROP TABLE recover from the log
    alone — no checkpoint ever happened."""
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.create_table("scratch", TableSchema.of(("x", SqlType.INTEGER)))
    db.load("scratch", [(1,), (2,)])
    db.drop_table("scratch")
    follow_up = _batch(1)
    monkeypatch.setenv(faults.CRASH_ENV, "wal-after-commit")
    with pytest.raises(InjectedCrash):
        db.append("reads", follow_up)  # committed, then the crash
    db.storage.simulate_crash()

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        assert "scratch" not in recovered.catalog
        _assert_recovered_equals(recovered, [initial, follow_up])
    finally:
        recovered.shutdown()


def test_replace_rows_recovers(tmp_path, monkeypatch):
    """A whole-table rewrite is one atomic WAL transaction too."""
    path = str(tmp_path / "db")
    initial = _batch(0)
    replacement = [row for row in initial if row[2] != 3]
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.shutdown()

    db = _new(path)
    db.table("reads").replace_rows(replacement, coerced=False)
    monkeypatch.setenv(faults.CRASH_ENV, "wal-before-commit")
    with pytest.raises(InjectedCrash):
        db.append("reads", _batch(1))  # lost: commit record never wrote
    db.storage.simulate_crash()

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        assert list(recovered.table("reads").scan()) == replacement
        recovered.table("reads").index_on("epc").tree.check_invariants()
    finally:
        recovered.shutdown()


def test_crash_during_recovery_checkpoint_is_survivable(tmp_path,
                                                        monkeypatch):
    """Recovery itself can crash (at its folding checkpoint) and the
    *next* recovery still lands on the last committed epoch."""
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    db.shutdown()

    db = _new(path)
    monkeypatch.setenv(faults.CRASH_ENV, "wal-after-commit")
    with pytest.raises(InjectedCrash):
        db.append("reads", _batch(1))  # committed
    db.storage.simulate_crash()
    faults.reset()

    # First recovery replays the batch, then crashes inside its own
    # checkpoint, before the new manifest is durable.
    monkeypatch.setenv(faults.CRASH_ENV, "checkpoint-before-manifest")
    with pytest.raises(InjectedCrash):
        _new(path)

    monkeypatch.delenv(faults.CRASH_ENV)
    faults.reset()
    recovered = _new(path)
    try:
        _assert_recovered_equals(recovered, [initial, _batch(1)])
    finally:
        recovered.shutdown()


def test_recovery_is_idempotent_across_reopens(tmp_path, monkeypatch):
    """Reopening twice without crashes changes nothing (epoch guard)."""
    path = str(tmp_path / "db")
    initial = _batch(0)
    db = _new(path)
    db.create_table("reads", READS)
    db.load("reads", initial)
    db.create_index("reads", "epc")
    monkeypatch.setenv(faults.CRASH_ENV, "checkpoint-after-manifest")
    with pytest.raises(InjectedCrash):
        db.checkpoint()  # manifest durable, WAL left un-truncated
    db.storage.simulate_crash()
    monkeypatch.delenv(faults.CRASH_ENV)

    for _ in range(2):  # WAL epochs <= manifest epoch: replay skips all
        faults.reset()
        recovered = _new(path)
        try:
            _assert_recovered_equals(recovered, [initial])
        finally:
            recovered.shutdown()
