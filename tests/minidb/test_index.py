"""Sorted-index tests, including a property test against linear scan."""

from hypothesis import given
from hypothesis import strategies as st

from repro.minidb.index import IndexRange, SortedIndex


def build(keys):
    index = SortedIndex("idx", "k")
    index.build((key, position) for position, key in enumerate(keys))
    return index


class TestRangeScan:
    def test_equality(self):
        index = build([5, 3, 5, 1])
        assert sorted(index.scan(IndexRange.equals(5))) == [0, 2]

    def test_inclusive_range(self):
        index = build([1, 2, 3, 4, 5])
        assert sorted(index.scan(IndexRange(2, 4))) == [1, 2, 3]

    def test_exclusive_bounds(self):
        index = build([1, 2, 3, 4, 5])
        key_range = IndexRange(2, 4, low_inclusive=False,
                               high_inclusive=False)
        assert list(index.scan(key_range)) == [2]

    def test_open_ended(self):
        index = build([1, 2, 3])
        assert sorted(index.scan(IndexRange(high=2))) == [0, 1]
        assert sorted(index.scan(IndexRange(low=2))) == [1, 2]

    def test_count_matches_scan(self):
        index = build([3, 1, 4, 1, 5, 9, 2, 6])
        key_range = IndexRange(2, 5)
        assert index.count(key_range) == len(list(index.scan(key_range)))

    def test_nulls_excluded(self):
        index = build([1, None, 2, None])
        assert len(index) == 2
        assert sorted(index.scan(IndexRange())) == [0, 2]

    def test_min_max_keys(self):
        index = build([4, 7, 2])
        assert index.min_key() == 2
        assert index.max_key() == 7
        assert build([]).min_key() is None

    def test_incremental_insert_keeps_sorted(self):
        index = build([1, 5])
        index.insert(3, 2)
        assert list(index.scan(IndexRange())) == [0, 2, 1]

    def test_insert_null_ignored(self):
        index = build([1])
        index.insert(None, 9)
        assert len(index) == 1

    def test_output_in_key_order(self):
        index = build([9, 1, 5])
        assert list(index.scan(IndexRange())) == [1, 2, 0]


@given(st.lists(st.one_of(st.none(), st.integers(0, 20)), max_size=40),
       st.integers(0, 20), st.integers(0, 20),
       st.booleans(), st.booleans())
def test_scan_agrees_with_linear_filter(keys, low, high, low_inc, high_inc):
    index = build(keys)
    key_range = IndexRange(low, high, low_inclusive=low_inc,
                           high_inclusive=high_inc)
    expected = set()
    for position, key in enumerate(keys):
        if key is None:
            continue
        above = key >= low if low_inc else key > low
        below = key <= high if high_inc else key < high
        if above and below:
            expected.add(position)
    assert set(index.scan(key_range)) == expected
    assert index.count(key_range) == len(expected)
