"""Prepared-plan cache and the version counters that keep it honest."""

from repro.minidb import Database, SqlType, TableSchema

SCHEMA = TableSchema.of(
    ("a", SqlType.INTEGER),
    ("b", SqlType.VARCHAR),
)

ROWS = [(i, f"v{i % 3}") for i in range(40)]


def make_db():
    db = Database()
    db.create_table("t", SCHEMA)
    db.load("t", ROWS)
    return db


class TestVersionCounters:
    def test_load_and_dml_bump_table_version(self):
        db = make_db()
        table = db.catalog.table("t")
        before = table.version
        db.run("insert into t values (100, 'x')")
        assert table.version > before
        before = table.version
        table.bulk_load([(101, 'y'), (102, 'z')])
        assert table.version > before
        before = table.version
        table.create_index("a")  # index rebuilds count as mutations too
        assert table.version > before

    def test_catalog_version_bumps_on_create_and_drop(self):
        db = make_db()
        before = db.catalog.version
        db.create_table("u", SCHEMA)
        assert db.catalog.version > before
        before = db.catalog.version
        db.drop_table("u")
        assert db.catalog.version > before

    def test_stats_invalidated_by_table_version(self):
        db = make_db()
        table = db.catalog.table("t")
        db.stats.analyze(table)
        assert db.stats.get("t") is not None
        table.insert((101, "y"))  # direct mutation, no re-analyze
        assert db.stats.get("t") is None  # stale entry must not be served


class TestPreparedPlanCache:
    SQL = "select b, count(*) as n from t where a >= 5 group by b"

    def test_repeated_sql_hits_and_matches(self):
        db = make_db()
        first = db.execute(self.SQL)
        assert db.plan_cache.misses >= 1
        hits_before = db.plan_cache.hits
        second = db.execute(self.SQL)
        assert db.plan_cache.hits == hits_before + 1
        assert sorted(first.rows) == sorted(second.rows)

    def test_metrics_report_cache_counters(self):
        db = make_db()
        _, metrics = db.execute_with_metrics(self.SQL)
        assert metrics.plan_cache_misses == 1
        _, metrics = db.execute_with_metrics(self.SQL)
        assert metrics.plan_cache_hits == 1
        assert metrics.plan_cache_misses == 0

    def test_dml_invalidates_cached_plan(self):
        db = make_db()
        db.execute(self.SQL)
        db.run("insert into t values (7, 'v0')")
        hits_before = db.plan_cache.hits
        result = db.execute(self.SQL)
        assert db.plan_cache.hits == hits_before  # fingerprint changed
        # And the re-planned query sees the new row.
        assert dict(result.rows)["v0"] == \
            sum(1 for a, b in ROWS if a >= 5 and b == "v0") + 1

    def test_metrics_do_not_accumulate_across_reexecution(self):
        db = make_db()
        _, first = db.execute_with_metrics(self.SQL)
        _, second = db.execute_with_metrics(self.SQL)
        # A cached (re-executed) plan must reset actual_rows counters.
        assert second.rows_emitted == first.rows_emitted
