"""Expression evaluation, substitution, traversal, and null semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlanningError, TypeMismatchError
from repro.minidb.expressions import (
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    UnaryOp,
    and_all,
    column,
    lit,
    or_all,
)
from repro.minidb.plan.planschema import Field, PlanSchema
from repro.minidb.types import SqlType


def schema(**cols):
    return PlanSchema([Field(name, sql_type) for name, sql_type
                       in cols.items()])


SCHEMA = schema(a=SqlType.INTEGER, b=SqlType.INTEGER, s=SqlType.VARCHAR)


def run(expr, row):
    return expr.bind(SCHEMA.resolver())(row)


class TestEvaluation:
    def test_column_and_literal(self):
        assert run(column("b"), (1, 2, "x")) == 2
        assert run(lit(42), (0, 0, "")) == 42

    def test_arithmetic(self):
        expr = BinaryOp("+", column("a"), BinaryOp("*", column("b"), lit(3)))
        assert run(expr, (1, 2, "")) == 7

    def test_integer_division_exact(self):
        assert run(BinaryOp("/", lit(6), lit(3)), ()) == 2

    def test_division_inexact_gives_float(self):
        assert run(BinaryOp("/", lit(7), lit(2)), ()) == pytest.approx(3.5)

    def test_division_by_zero(self):
        with pytest.raises(TypeMismatchError):
            run(BinaryOp("/", lit(1), lit(0)), ())

    def test_null_propagates_through_arithmetic(self):
        expr = BinaryOp("-", column("a"), column("b"))
        assert run(expr, (None, 2, "")) is None

    def test_comparison_null_is_unknown(self):
        expr = BinaryOp("<", column("a"), column("b"))
        assert run(expr, (None, 2, "")) is None
        assert run(expr, (1, 2, "")) is True

    def test_and_or_three_valued(self):
        true = lit(True)
        null = BinaryOp("=", lit(None), lit(1))
        assert run(BinaryOp("or", true, null), ()) is True
        assert run(BinaryOp("and", true, null), ()) is None

    def test_unary_not_and_negate(self):
        assert run(UnaryOp("not", lit(False)), ()) is True
        assert run(UnaryOp("-", column("a")), (5, 0, "")) == -5
        assert run(UnaryOp("-", lit(None)), ()) is None

    def test_is_null(self):
        assert run(IsNull(column("a")), (None, 0, "")) is True
        assert run(IsNull(column("a"), negated=True), (None, 0, "")) is False

    def test_case_first_match_wins(self):
        expr = Case(((BinaryOp(">", column("a"), lit(0)), lit("pos")),
                     (BinaryOp("<", column("a"), lit(0)), lit("neg"))),
                    lit("zero"))
        assert run(expr, (3, 0, "")) == "pos"
        assert run(expr, (-3, 0, "")) == "neg"
        assert run(expr, (0, 0, "")) == "zero"

    def test_case_unknown_condition_skipped(self):
        expr = Case(((BinaryOp(">", column("a"), lit(0)), lit("pos")),),
                    lit("other"))
        assert run(expr, (None, 0, "")) == "other"

    def test_case_without_else_defaults_null(self):
        expr = Case(((lit(False), lit(1)),))
        assert run(expr, ()) is None


class TestInList:
    def test_membership(self):
        expr = InList(column("a"), (lit(1), lit(2)))
        assert run(expr, (2, 0, "")) is True
        assert run(expr, (3, 0, "")) is False

    def test_negated(self):
        expr = InList(column("a"), (lit(1),), negated=True)
        assert run(expr, (2, 0, "")) is True

    def test_null_operand_unknown(self):
        expr = InList(column("a"), (lit(1),))
        assert run(expr, (None, 0, "")) is None

    def test_null_item_makes_nonmatch_unknown(self):
        expr = InList(column("a"), (lit(1), lit(None)))
        assert run(expr, (1, 0, "")) is True
        assert run(expr, (2, 0, "")) is None


class TestScalarFunctions:
    def test_coalesce(self):
        expr = FuncCall("coalesce", (column("a"), lit(9)))
        assert run(expr, (None, 0, "")) == 9
        assert run(expr, (4, 0, "")) == 4

    def test_string_functions(self):
        assert run(FuncCall("length", (column("s"),)), (0, 0, "abc")) == 3
        assert run(FuncCall("upper", (column("s"),)), (0, 0, "ab")) == "AB"
        assert run(FuncCall("substr", (lit("hello"), lit(2), lit(3))), ()) \
            == "ell"

    def test_like(self):
        like = FuncCall("like", (column("s"), lit("a%c")))
        assert run(like, (0, 0, "abbbc")) is True
        assert run(like, (0, 0, "abd")) is False
        underscore = FuncCall("like", (column("s"), lit("a_c")))
        assert run(underscore, (0, 0, "abc")) is True
        assert run(underscore, (0, 0, "abbc")) is False

    def test_nullif_least_greatest(self):
        assert run(FuncCall("nullif", (lit(3), lit(3))), ()) is None
        assert run(FuncCall("least", (lit(3), lit(1))), ()) == 1
        assert run(FuncCall("greatest", (lit(3), lit(1))), ()) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanningError):
            FuncCall("frobnicate", ()).bind(SCHEMA.resolver())


class TestStructural:
    def test_equality_and_hash(self):
        first = BinaryOp("<", column("a"), lit(1))
        second = BinaryOp("<", column("a"), lit(1))
        assert first == second
        assert len({first, second}) == 1

    def test_substitute_replaces_subtree(self):
        expr = BinaryOp("<", column("a"), lit(1))
        replaced = expr.substitute({column("a"): column("b")})
        assert replaced == BinaryOp("<", column("b"), lit(1))

    def test_substitute_is_top_down(self):
        inner = BinaryOp("+", column("a"), lit(1))
        outer = BinaryOp("<", inner, lit(5))
        replaced = outer.substitute({inner: column("b"),
                                     column("a"): column("s")})
        assert replaced == BinaryOp("<", column("b"), lit(5))

    def test_referenced_columns(self):
        expr = BinaryOp("and",
                        BinaryOp("=", column("x", "t"), lit(1)),
                        IsNull(column("y")))
        assert expr.referenced_columns() == {ColumnRef("x", "t"),
                                             ColumnRef("y")}

    def test_and_all_or_all(self):
        conjuncts = [lit(True), lit(False)]
        assert and_all(conjuncts).op == "and"
        assert or_all(conjuncts).op == "or"
        assert and_all([]) is None
        assert and_all([lit(True)]) == lit(True)

    @given(st.integers(-5, 5), st.integers(-5, 5))
    def test_to_sql_reparses_to_equal_tree(self, x, y):
        from repro.minidb.sqlparse import parse_expression
        expr = BinaryOp("and",
                        BinaryOp("<", column("a"), lit(x)),
                        BinaryOp(">=", column("b"), lit(y)))
        assert parse_expression(expr.to_sql()) == expr

    def test_operator_normalization(self):
        assert BinaryOp("<>", column("a"), lit(1)).op == "!="
        assert BinaryOp("AND", lit(True), lit(True)).op == "and"

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanningError):
            BinaryOp("%%", column("a"), lit(1))
