"""Encoded columnar execution: representation pins and parity.

Four layers of coverage for the ``REPRO_ENCODE`` knob:

- unit pins for :class:`DictColumn` / :class:`RLEColumn` /
  ``encode_column`` (round-trips, the NULL slot, sorted-dictionary
  bisects, float negative-zero distinctness, the append/extend
  protocol);
- the acceptance parity matrix — rows AND the full EXPLAIN ANALYZE
  render byte-identical between ``encode=True`` and ``encode=False``
  for every workers × batch-size × storage × codegen combination;
- the exact-NDV satellite: a warm dictionary turns the append-patch
  ndv from a lower bound into an exact count, without losing the
  in-place patch (no re-analyze);
- the ``storage stat`` CLI footprint report shape.
"""

import random

import pytest

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema
from repro.minidb.codegen.knobs import forced_codegen
from repro.minidb.plan import shard
from repro.minidb.storage.__main__ import stat
from repro.minidb.vector import (
    DictColumn,
    RLEColumn,
    encode_column,
    forced_batch_size,
    forced_encoding,
)


class TestDictColumn:
    def test_round_trip_and_null_slot(self):
        source = ["b", None, "a", "b", "a", None]
        column = encode_column(source)
        assert isinstance(column, DictColumn)
        assert column.values[0] is None  # code 0 reserved for NULL
        assert column.decode() == source
        assert list(column) == source
        assert [column[i] for i in range(len(source))] == source
        assert column.distinct_count() == 2

    def test_sorted_dictionary_bisect_compare(self):
        column = encode_column(["c", "a", None, "b", "c"])
        assert column.sorted
        truth = column.map_compare("<=", lambda a, b: a <= b, "b")
        # One slot per distinct value, not one per row.
        assert truth.values == [None, True, True, False]
        assert truth.codes is column.codes  # codes shared, never copied
        assert truth.decode() == [False, True, None, True, False]

    def test_negative_zero_stays_distinct(self):
        # The FLOAT codec is bit-exact, so -0.0 == 0.0 must not collapse
        # into one dictionary slot (decode would flip sign bits).
        source = [0.0, -0.0, 0.0, -0.0]
        column = encode_column(source)
        assert isinstance(column, DictColumn)
        assert [str(v) for v in column.decode()] == [str(v) for v in source]

    def test_extend_from_appends_without_reencoding(self):
        source = ["a", "c", "a"]
        column = encode_column(source)
        old_codes = list(column.codes)
        source += ["b", "c", None]
        column.extend_from(source, 3)
        assert column.codes[:3] == old_codes  # history untouched
        assert column.decode() == source
        assert column.distinct_count() == 3
        assert not column.sorted  # "b" arrived after "c"

    def test_take_preserves_dictionary(self):
        column = encode_column(["x", "y", None, "x"])
        taken = column.take([3, 2, 0])
        assert taken.decode() == ["x", None, "x"]
        assert taken.values is column.values


class TestRLEColumn:
    def test_round_trip_and_runs(self):
        source = ["a", "a", "a", None, None, "b"]
        column = RLEColumn.from_values(source)
        assert column.decode() == source
        assert list(column.runs()) == [(0, 3, "a"), (3, 2, None),
                                       (5, 1, "b")]

    def test_encoder_picks_rle_for_clustered_data(self):
        source = [f"L{i // 50}" for i in range(300)]
        column = encode_column(source)
        assert isinstance(column, RLEColumn)
        assert column.decode() == source
        assert len(list(column.runs())) == 6

    def test_map_compare_once_per_run(self):
        column = RLEColumn.from_values([5, 5, 5, 9, 9, None])
        truth = column.map_compare("<", lambda a, b: a < b, 7)
        assert truth.decode() == [True, True, True, False, False, None]

    def test_extend_from_merges_trailing_run(self):
        source = [1, 1, 2]
        column = RLEColumn.from_values(source)
        source = source + [2, 2, 3]
        column.extend_from(source, 3)
        assert column.decode() == source
        assert list(column.runs()) == [(0, 2, 1), (2, 3, 2), (5, 1, 3)]


READS_SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("tag", SqlType.VARCHAR),
    ("loc", SqlType.VARCHAR), ("val", SqlType.INTEGER))

DIM_SCHEMA = TableSchema.of(
    ("tag", SqlType.VARCHAR), ("label", SqlType.VARCHAR))


def _reads_rows(count=300):
    rng = random.Random(7)
    return [(i,
             f"t{rng.randrange(7)}",          # scattered -> dictionary
             f"L{i // 50}",                   # clustered -> RLE
             None if rng.random() < 0.1 else rng.randrange(50))
            for i in range(count)]


DIM_ROWS = [("t0", "zero"), ("t1", "one"), ("t3", "three"),
            ("t3", "tres")]

PARITY_QUERIES = [
    "select count(*) as n, sum(val) as s from reads "
    "where tag >= 't2' and tag <= 't4'",
    "select loc, count(*) as n, min(val) as lo from reads "
    "where loc = 'L3' or val < 5 group by loc order by loc",
    "select r.tag, d.label from reads r, dim d "
    "where r.tag = d.tag and r.val > 40 order by r.id, d.label",
    "select tag, val from reads where val is not null "
    "order by tag desc, val, id limit 25",
]


def _build(encode, storage, path):
    options = PlannerOptions(parallel_windows=True)
    if storage == "disk":
        db = Database(storage="disk", storage_path=str(path),
                      encode=encode, options=options)
    else:
        db = Database(encode=encode, options=options)
    db.create_table("reads", READS_SCHEMA)
    db.load("reads", _reads_rows())
    db.create_table("dim", DIM_SCHEMA)
    db.load("dim", DIM_ROWS)
    return db


def _observe(db, batch_size, codegen):
    """(rows, EXPLAIN ANALYZE text) per parity query, one knob combo."""
    out = []
    with forced_batch_size(batch_size), forced_codegen(codegen):
        for sql in PARITY_QUERIES:
            db.plan_cache.clear()
            explained = db.explain_analyze(sql)
            out.append((db.execute(sql).rows, explained.text))
    return out


class TestEncodedParityMatrix:
    """The acceptance matrix: encoding must be invisible everywhere.

    For each workers × batch × storage × codegen combination the
    encoded database must produce byte-identical rows AND an identical
    EXPLAIN ANALYZE render (operator labels and actual row counts) to
    the plain one.
    """

    @pytest.mark.parametrize("storage", ["memory", "disk"])
    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("codegen", [False, True],
                             ids=["interp", "codegen"])
    def test_rows_and_explain_identical(self, tmp_path, storage, workers,
                                        codegen, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        if workers:
            # The parity dataset sits far below the shard threshold;
            # drop it so the Exchange actually engages.
            monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", 64)
        encoded = _build(True, storage, tmp_path / "enc")
        plain = _build(False, storage, tmp_path / "plain")
        try:
            # Scalar vs batch EXPLAIN counters legitimately differ
            # (early-out under Limit), so parity is asserted encoded
            # vs plain *within* each batch size, never across sizes.
            for batch_size in (0, 1, 7):
                assert (_observe(encoded, batch_size, codegen)
                        == _observe(plain, batch_size, codegen)), (
                    f"encoding visible at batch size {batch_size}")
        finally:
            encoded.close()
            plain.close()


class TestExactNdvFromDictionary:
    """Satellite 1: the append patch reads exact ndv off a warm
    dictionary instead of keeping the outside-range lower bound."""

    SCHEMA = TableSchema.of(("id", SqlType.INTEGER),
                            ("tag", SqlType.VARCHAR))
    ROWS = [(i, f"t{'abcde'[i % 5]}") for i in range(40)]
    #: In range (ta .. te), previously unseen: the lower-bound patch
    #: cannot see it, the dictionary cannot miss it.
    APPEND = [(40, "tcc"), (41, "ta")]

    def _patched_ndv(self, encode):
        # Memory storage pinned: disk scans stream pages around the
        # columnar cache, so a query there would never warm the
        # dictionary this test relies on.
        with forced_encoding(encode):
            db = Database(storage="memory", encode=encode)
            db.create_table("t", self.SCHEMA)
            db.load("t", self.ROWS)
            db.analyze("t")
            with forced_batch_size(64):
                db.execute("select count(*) as n from t where tag >= 'ta'")
            patches_before = db.stats.patches
            db.append("t", self.APPEND)
            assert db.stats.patches == patches_before + 1, (
                "append must patch stats in place, not re-analyze")
            return db.stats.get("t").column("tag").ndv

    def test_warm_dictionary_makes_append_ndv_exact(self):
        # Plain columns: "tcc" falls inside [ta, te], so the patch can
        # only keep the stale lower bound.
        assert self._patched_ndv(encode=False) == 5
        # A warm dictionary has deduplicated every value ever appended:
        # the patch reports the exact distinct count.
        assert self._patched_ndv(encode=True) == 6


class TestStorageStatFootprint:
    """Satellite 2: the stat CLI reports encoded vs plain bytes."""

    def _stat_lines(self, path, encode):
        db = Database(storage="disk", storage_path=str(path),
                      encode=encode)
        db.create_table("reads", READS_SCHEMA)
        db.load("reads", _reads_rows())
        db.shutdown()
        return stat(str(path)).splitlines()

    def _footprint(self, lines):
        [line] = [text for text in lines
                  if text.startswith("table reads footprint:")]
        # "table reads footprint: S bytes stored (D dict pages),
        #  P bytes plain, ratio R"
        words = line.split()
        stored, dict_pages = int(words[3]), int(words[6].lstrip("("))
        plain, ratio = int(words[9]), float(words[-1])
        assert "bytes stored" in line and "bytes plain" in line
        assert "dict pages)" in line and "ratio" in line
        return stored, plain, dict_pages, ratio

    def test_encoded_directory_reports_compression(self, tmp_path):
        lines = self._stat_lines(tmp_path / "enc", encode=True)
        stored, plain, dict_pages, ratio = self._footprint(lines)
        assert dict_pages > 0
        assert stored < plain
        assert ratio == round(stored / plain, 2)

    def test_plain_directory_reports_unity(self, tmp_path):
        lines = self._stat_lines(tmp_path / "plain", encode=False)
        stored, plain, dict_pages, ratio = self._footprint(lines)
        assert dict_pages == 0
        assert stored == plain
        assert ratio == 1.0
