"""DDL/DML statement tests (CREATE TABLE / CREATE INDEX / INSERT)."""

import pytest

from repro.errors import CatalogError, SchemaError, SqlSyntaxError
from repro.minidb import Database, SqlType
from repro.minidb.sqlparse import parse_sql
from repro.minidb.sqlparse.ast import (
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
)


class TestParsing:
    def test_create_table(self):
        statement = parse_sql(
            "create table t (a integer, b varchar(50), c timestamp)")
        assert isinstance(statement, CreateTableStmt)
        assert statement.columns == [
            ("a", SqlType.INTEGER), ("b", SqlType.VARCHAR),
            ("c", SqlType.TIMESTAMP)]

    def test_type_synonyms(self):
        statement = parse_sql(
            "create table t (a int, b float, c text, d bool)")
        assert [sql_type for _, sql_type in statement.columns] == [
            SqlType.INTEGER, SqlType.DOUBLE, SqlType.VARCHAR,
            SqlType.BOOLEAN]

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unknown type"):
            parse_sql("create table t (a blob)")

    def test_create_index_with_and_without_name(self):
        anonymous = parse_sql("create index on t (a)")
        named = parse_sql("create index idx_a on t (a)")
        assert isinstance(anonymous, CreateIndexStmt)
        assert anonymous.name is None
        assert named.name == "idx_a"

    def test_insert_multi_row(self):
        statement = parse_sql(
            "insert into t (a, b) values (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStmt)
        assert len(statement.rows) == 2
        assert statement.columns == ["a", "b"]

    def test_select_still_dispatches(self):
        assert isinstance(parse_sql("select 1 as one from t"), SelectStmt)

    def test_round_trips(self):
        for sql in ("create table t (a integer)",
                    "create index on t (a)",
                    "insert into t values (1)"):
            statement = parse_sql(sql)
            assert parse_sql(statement.to_sql()).to_sql() \
                == statement.to_sql()


class TestExecution:
    def test_full_lifecycle(self):
        db = Database()
        db.run("create table events (id integer, name varchar)")
        result = db.run(
            "insert into events values (2, 'b'), (1, 'a'), (3, null)")
        assert result.rows == [(3,)]
        db.run("create index on events (id)")
        rows = db.run("select name from events where id <= 2 "
                      "order by id asc")
        assert rows.rows == [("a",), ("b",)]

    def test_insert_with_expressions(self):
        db = Database()
        db.run("create table t (a integer)")
        db.run("insert into t values (2 + 3), (10 * 2)")
        assert db.run("select a from t order by a asc").column("a") \
            == [5, 20]

    def test_insert_column_subset(self):
        db = Database()
        db.run("create table t (a integer, b varchar)")
        db.run("insert into t (b) values ('only-b')")
        assert db.run("select a, b from t").rows == [(None, "only-b")]

    def test_insert_arity_mismatch(self):
        db = Database()
        db.run("create table t (a integer, b varchar)")
        with pytest.raises(SchemaError):
            db.run("insert into t values (1)")

    def test_duplicate_table_rejected(self):
        db = Database()
        db.run("create table t (a integer)")
        with pytest.raises(CatalogError):
            db.run("create table t (a integer)")

    def test_stats_refresh_after_insert(self):
        db = Database()
        db.run("create table t (a integer)")
        db.run("insert into t values (1), (2)")
        assert db.stats.get("t").row_count == 2

    def test_order_by_hidden_column(self):
        db = Database()
        db.run("create table t (a integer, b varchar)")
        db.run("insert into t values (3, 'x'), (1, 'y'), (2, 'z')")
        rows = db.run("select b from t order by a desc")
        assert rows.rows == [("x",), ("z",), ("y",)]
        assert rows.columns == ["b"]

    def test_order_by_hidden_with_distinct_rejected(self):
        from repro.errors import PlanningError

        db = Database()
        db.run("create table t (a integer, b varchar)")
        with pytest.raises(PlanningError, match="DISTINCT"):
            db.run("select distinct b from t order by a asc")
