"""Window-function executor tests.

The SQL/OLAP executor is the engine's most intricate component and the
one all cleansing rules ride on, so it gets both example-based tests and
property tests: the optimized sliding-frame evaluation must agree with
the naive per-row rescan, and both must agree with an independent
Python reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema

SCHEMA = TableSchema.of(("g", SqlType.VARCHAR),
                        ("t", SqlType.TIMESTAMP),
                        ("v", SqlType.INTEGER))


def make_db(rows):
    db = Database()
    db.create_table("w", SCHEMA)
    db.load("w", rows)
    return db


def run(db, sql, naive=False):
    options = PlannerOptions(naive_windows=naive)
    return db.execute(sql, options=options)


class TestRowsFrames:
    def test_lag_style_one_preceding(self):
        db = make_db([("a", 1, 10), ("a", 2, 20), ("a", 3, 30),
                      ("b", 1, 99)])
        rs = run(db, """
            select g, t, max(v) over (partition by g order by t asc
                rows between 1 preceding and 1 preceding) as prev
            from w""")
        assert rs.rows == [("a", 1, None), ("a", 2, 10), ("a", 3, 20),
                           ("b", 1, None)]

    def test_following_window(self):
        db = make_db([("a", 1, 10), ("a", 2, 20), ("a", 3, 30)])
        rs = run(db, """
            select t, sum(v) over (partition by g order by t asc
                rows between 1 following and 2 following) as nxt
            from w""")
        assert rs.column("nxt") == [50, 30, None]

    def test_unbounded_both_sides(self):
        db = make_db([("a", 1, 1), ("a", 2, 2), ("b", 1, 5)])
        rs = run(db, """
            select g, count(*) over (partition by g order by t asc
                rows between unbounded preceding and unbounded following)
                as n
            from w""")
        assert rs.rows == [("a", 2), ("a", 2), ("b", 1)]

    def test_default_frame_is_cumulative_with_peers(self):
        db = make_db([("a", 1, 1), ("a", 2, 2), ("a", 2, 3), ("a", 3, 4)])
        rs = run(db, """
            select t, sum(v) over (partition by g order by t asc) as s
            from w""")
        # Rows with t=2 are peers: both see the full peer group.
        assert rs.column("s") == [1, 6, 6, 10]

    def test_no_order_means_whole_partition(self):
        db = make_db([("a", 1, 1), ("a", 9, 2)])
        rs = run(db, "select sum(v) over (partition by g) as s from w")
        assert rs.column("s") == [3, 3]


class TestRangeFrames:
    def test_range_following_window(self):
        db = make_db([("a", 0, 1), ("a", 50, 2), ("a", 100, 3),
                      ("a", 400, 4)])
        rs = run(db, """
            select t, count(*) over (partition by g order by t asc
                range between 1 following and 100 following) as n
            from w""")
        assert rs.column("n") == [2, 1, 0, 0]

    def test_range_preceding_window(self):
        db = make_db([("a", 0, 1), ("a", 50, 2), ("a", 100, 3)])
        rs = run(db, """
            select t, sum(v) over (partition by g order by t asc
                range between 60 preceding and 1 preceding) as s
            from w""")
        assert rs.column("s") == [None, 1, 2]

    def test_range_excluding_current_row(self):
        db = make_db([("a", 10, 7)])
        rs = run(db, """
            select max(v) over (partition by g order by t asc
                range between 1 following and 5 following) as m
            from w""")
        assert rs.column("m") == [None]

    def test_range_ties_share_frame(self):
        db = make_db([("a", 10, 1), ("a", 10, 2), ("a", 11, 3)])
        rs = run(db, """
            select count(*) over (partition by g order by t asc
                range between 0 preceding and 0 following) as n
            from w""")
        assert rs.column("n") == [2, 2, 1]


class TestFunctions:
    def test_row_number(self):
        db = make_db([("a", 3, 0), ("a", 1, 0), ("b", 2, 0)])
        rs = run(db, """
            select g, t, row_number() over (partition by g order by t asc)
                as rn
            from w""")
        assert rs.rows == [("a", 1, 1), ("a", 3, 2), ("b", 2, 1)]

    def test_lag_and_lead(self):
        db = make_db([("a", 1, 10), ("a", 2, 20), ("a", 3, 30)])
        rs = run(db, """
            select lag(v) over (partition by g order by t asc) as lg,
                   lead(v) over (partition by g order by t asc) as ld
            from w""")
        assert rs.column("lg") == [None, 10, 20]
        assert rs.column("ld") == [20, 30, None]

    def test_null_arguments_skipped_by_aggregates(self):
        db = make_db([("a", 1, None), ("a", 2, 5)])
        rs = run(db, """
            select count(v) over (partition by g) as c,
                   count(*) over (partition by g) as n,
                   avg(v) over (partition by g) as m
            from w""")
        assert rs.rows[0] == (1, 2, 5.0)

    def test_min_max_over_sliding_window(self):
        db = make_db([("a", i, v) for i, v in
                      enumerate([5, 1, 4, 2, 8, 3])])
        rs = run(db, """
            select min(v) over (partition by g order by t asc
                rows between 2 preceding and current row) as lo,
                   max(v) over (partition by g order by t asc
                rows between 2 preceding and current row) as hi
            from w""")
        assert rs.column("lo") == [5, 1, 1, 1, 2, 2]
        assert rs.column("hi") == [5, 5, 5, 4, 8, 8]

    def test_descending_order(self):
        db = make_db([("a", 1, 10), ("a", 2, 20), ("a", 3, 30)])
        rs = run(db, """
            select t, max(v) over (partition by g order by t desc
                rows between 1 preceding and 1 preceding) as nxt
            from w""")
        by_t = dict(zip(rs.column("t"), rs.column("nxt")))
        assert by_t == {3: None, 2: 30, 1: 20}


# ----------------------------------------------------------------------
# Property tests: sliding == naive == reference model.
# ----------------------------------------------------------------------

def _dedupe(rows):
    """ROWS frames are order-sensitive for tied sort keys, so the
    property data keeps (group, t) unique."""
    seen = set()
    out = []
    for row in rows:
        if (row[0], row[1]) in seen:
            continue
        seen.add((row[0], row[1]))
        out.append(row)
    return out


rows_strategy = st.lists(
    st.tuples(st.sampled_from(["a", "b"]),
              st.integers(0, 30),
              st.one_of(st.none(), st.integers(-10, 10))),
    min_size=0, max_size=40).map(_dedupe)


def _bound_sql(offset, is_start):
    if offset == 0:
        return "current row"
    if offset < 0:
        return f"{-offset} preceding"
    return f"{offset} following"


def reference(rows, func, mode, start, end):
    """Independent O(n^2) model of one windowed aggregate."""
    out = []
    groups = {}
    for row in sorted(rows, key=lambda r: (r[0], r[1])):
        groups.setdefault(row[0], []).append(row)
    for group_rows in groups.values():
        for i, row in enumerate(group_rows):
            window = []
            for j, other in enumerate(group_rows):
                if mode == "rows":
                    inside = start <= j - i <= end
                else:
                    inside = (row[1] + start) <= other[1] <= (row[1] + end)
                if inside:
                    window.append(other[2])
            values = [v for v in window if v is not None]
            if func == "count":
                out.append(len(window))
            elif not values:
                out.append(None)
            elif func == "sum":
                out.append(sum(values))
            elif func == "min":
                out.append(min(values))
            else:
                out.append(max(values))
    return sorted(out, key=lambda v: (v is None, v))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy,
       func=st.sampled_from(["sum", "min", "max", "count"]),
       mode=st.sampled_from(["rows", "range"]),
       bounds=st.tuples(st.integers(-6, 6), st.integers(-6, 6)))
def test_sliding_matches_naive_and_reference(rows, func, mode, bounds):
    start, end = min(bounds), max(bounds)
    frame = (f"{mode} between {_bound_sql(start, True)} "
             f"and {_bound_sql(end, False)}")
    argument = "*" if func == "count" else "v"
    sql = (f"select {func}({argument}) over (partition by g order by t asc "
           f"{frame}) as x from w")
    db = make_db(rows)
    fast = run(db, sql, naive=False).column("x")
    slow = run(db, sql, naive=True).column("x")
    assert fast == slow
    key = lambda v: (v is None, v)  # noqa: E731
    if func == "count":
        expected = reference(rows, "count", mode, start, end)
        assert sorted(fast, key=key) == expected
    else:
        expected = reference(rows, func, mode, start, end)
        assert sorted(fast, key=key) == expected


class TestLagLeadOffsets:
    def test_offset_two(self):
        db = make_db([("a", i, i * 10) for i in range(4)])
        rs = run(db, """
            select lag(v, 2) over (partition by g order by t asc) as l2,
                   lead(v, 2) over (partition by g order by t asc) as d2
            from w""")
        assert rs.column("l2") == [None, None, 0, 10]
        assert rs.column("d2") == [20, 30, None, None]

    def test_offset_zero_is_identity(self):
        db = make_db([("a", 0, 7), ("a", 1, 8)])
        rs = run(db, "select lag(v, 0) over (partition by g "
                     "order by t asc) as x from w")
        assert rs.column("x") == [7, 8]

    def test_offset_beyond_partition(self):
        db = make_db([("a", 0, 7)])
        rs = run(db, "select lead(v, 5) over (partition by g "
                     "order by t asc) as x from w")
        assert rs.column("x") == [None]

    def test_offset_round_trips_in_sql(self):
        from repro.minidb.sqlparse import parse_expression
        expr = parse_expression(
            "lag(v, 3) over (partition by g order by t asc)")
        assert expr.offset == 3
        assert parse_expression(expr.to_sql()) == expr

    def test_non_literal_offset_rejected(self):
        import pytest
        from repro.errors import SqlSyntaxError
        from repro.minidb.sqlparse import parse_expression
        with pytest.raises(SqlSyntaxError):
            parse_expression("lag(v, t) over (order by t asc)")
