"""SQL parser tests: shapes, desugaring, errors, and to_sql round trips."""

import pytest

from repro.errors import SqlSyntaxError
from repro.minidb.expressions import (
    UNBOUNDED,
    AggregateCall,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    UnaryOp,
    WindowFunction,
)
from repro.minidb.sqlparse import parse_expression, parse_select
from repro.minidb.sqlparse.ast import DerivedTable, JoinRef, TableName


class TestSelectShapes:
    def test_simple_select(self):
        stmt = parse_select("select a, b from t where a = 1")
        assert [item.expr for item in stmt.items] == [ColumnRef("a"),
                                                      ColumnRef("b")]
        assert isinstance(stmt.from_refs[0], TableName)
        assert stmt.where == BinaryOp("=", ColumnRef("a"), Literal(1))

    def test_star_and_qualified_star(self):
        stmt = parse_select("select *, t.* from t")
        assert stmt.items[0].star and stmt.items[0].qualifier is None
        assert stmt.items[1].star and stmt.items[1].qualifier == "t"

    def test_aliases(self):
        stmt = parse_select("select a as x, b y from t1 z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_refs[0].alias == "z"

    def test_group_by_having_order_limit(self):
        stmt = parse_select(
            "select a, count(*) from t group by a having count(*) > 2 "
            "order by a desc limit 5")
        assert stmt.group_by == [ColumnRef("a")]
        assert isinstance(stmt.having, BinaryOp)
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct

    def test_cte(self):
        stmt = parse_select(
            "with v as (select a from t) select * from v")
        assert stmt.ctes[0].name == "v"
        assert stmt.ctes[0].select.items[0].expr == ColumnRef("a")

    def test_union_all(self):
        stmt = parse_select("select a from t union all select b from u")
        assert stmt.set_op.op == "union_all"

    def test_union_distinct(self):
        stmt = parse_select("select a from t union select b from u")
        assert stmt.set_op.op == "union"

    def test_explicit_join(self):
        stmt = parse_select(
            "select * from t join u on t.k = u.k left join v on u.j = v.j")
        ref = stmt.from_refs[0]
        assert isinstance(ref, JoinRef) and ref.kind == "left"
        assert isinstance(ref.left, JoinRef) and ref.left.kind == "inner"

    def test_derived_table(self):
        stmt = parse_select("select * from (select a from t) d")
        ref = stmt.from_refs[0]
        assert isinstance(ref, DerivedTable) and ref.alias == "d"

    def test_comma_join_list(self):
        stmt = parse_select("select * from a, b, c")
        assert [ref.name for ref in stmt.from_refs] == ["a", "b", "c"]


class TestExpressions:
    def test_precedence_arithmetic_over_comparison(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"
        assert expr.left.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = parse_expression("not a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_between_desugars(self):
        expr = parse_expression("a between 1 and 5")
        assert expr == BinaryOp(
            "and",
            BinaryOp(">=", ColumnRef("a"), Literal(1)),
            BinaryOp("<=", ColumnRef("a"), Literal(5)))

    def test_not_between(self):
        expr = parse_expression("a not between 1 and 5")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_in_list(self):
        expr = parse_expression("a in (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in_subquery(self):
        expr = parse_expression("a not in (select k from d)")
        assert isinstance(expr, InSubquery) and expr.negated

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a is null") == IsNull(ColumnRef("a"))
        assert parse_expression("a is not null") == \
            IsNull(ColumnRef("a"), negated=True)

    def test_like_desugars_to_funcall(self):
        expr = parse_expression("a like 'x%'")
        assert isinstance(expr, FuncCall) and expr.name == "like"

    def test_case(self):
        expr = parse_expression(
            "case when a = 1 then 'one' when a = 2 then 'two' else 'x' end")
        assert isinstance(expr, Case)
        assert len(expr.whens) == 2
        assert expr.else_result == Literal("x")

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("case else 1 end")

    def test_unary_minus(self):
        expr = parse_expression("-a + 3")
        assert expr.op == "+"
        assert isinstance(expr.left, UnaryOp)

    def test_timestamp_literal(self):
        expr = parse_expression("timestamp '2006-09-12 00:00:00'")
        assert isinstance(expr, Literal) and isinstance(expr.value, int)

    def test_interval_literal(self):
        assert parse_expression("interval '5' minute") == Literal(300)
        assert parse_expression("interval 2 hours") == Literal(7200)

    def test_numeric_unit_shorthand(self):
        assert parse_expression("5 mins") == Literal(300)
        assert parse_expression("b.rtime - a.rtime < 5 mins") == BinaryOp(
            "<",
            BinaryOp("-", ColumnRef("rtime", "b"), ColumnRef("rtime", "a")),
            Literal(300))

    def test_count_star_and_distinct(self):
        assert parse_expression("count(*)") == AggregateCall("count", None)
        expr = parse_expression("count(distinct a)")
        assert isinstance(expr, AggregateCall) and expr.distinct


class TestWindowParsing:
    def test_full_window(self):
        expr = parse_expression(
            "max(biz_loc) over (partition by epc order by rtime asc "
            "rows between 1 preceding and 1 preceding)")
        assert isinstance(expr, WindowFunction)
        assert expr.partition_by == (ColumnRef("epc"),)
        assert expr.frame.mode == "rows"
        assert expr.frame.start == -1 and expr.frame.end == -1

    def test_range_with_time_units(self):
        expr = parse_expression(
            "max(x) over (order by rtime range between 1 sec following "
            "and 5 min following)")
        assert expr.frame.mode == "range"
        assert expr.frame.start == 1 and expr.frame.end == 300

    def test_unbounded_and_current_row(self):
        expr = parse_expression(
            "sum(x) over (order by t rows between unbounded preceding "
            "and current row)")
        assert expr.frame.start == UNBOUNDED and expr.frame.end == 0

    def test_shorthand_n_preceding(self):
        expr = parse_expression("max(x) over (order by t rows 2 preceding)")
        assert expr.frame.start == -2 and expr.frame.end == 0

    def test_row_number(self):
        expr = parse_expression("row_number() over (order by t)")
        assert expr.name == "row_number"

    def test_scalar_function_cannot_take_over(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("length(x) over (order by t)")


class TestErrorsAndRoundTrip:
    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_select("select a from t garbage extra ,")

    def test_missing_from_target(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select a from")

    def test_expression_trailing(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("a = 1 bogus ,")

    @pytest.mark.parametrize("sql", [
        "select a, b as x from t where a < 3 order by x asc limit 2",
        "with v as (select a from t) select * from v where a is not null",
        "select count(distinct a) from t group by b having count(*) > 1",
        "select * from t join u on t.k = u.k where t.a in (1, 2)",
        "select max(a) over (partition by b order by c asc "
        "range between 1 following and 10 following) from t",
        "select a from t union all select b from u",
    ])
    def test_to_sql_round_trip(self, sql):
        first = parse_select(sql)
        second = parse_select(first.to_sql())
        assert second.to_sql() == first.to_sql()
