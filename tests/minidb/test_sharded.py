"""End-to-end pins for shard-parallel query execution.

Determinism: for a fixed query, the result (rows AND order) and the
per-operator EXPLAIN ANALYZE row counts are identical across every
worker-count × batch-size combination. Pool lifecycle: the worker pool
is forked once per database *state* and reused across queries, with a
respawn when the data changes. Fallbacks: an Exchange without a usable
pool degrades to serial pass-through, never to an error.
"""

import pytest

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema
from repro.minidb.codegen import CompiledSpineOp
from repro.minidb.plan import shard
from repro.minidb.plan.shard import ExchangeOp
from repro.minidb.vector import forced_batch_size, materialize

SCHEMA = TableSchema.of(("epc", SqlType.VARCHAR),
                        ("rtime", SqlType.TIMESTAMP),
                        ("val", SqlType.INTEGER))

WINDOW_SQL = """
    select epc, rtime, val,
           sum(val) over (partition by epc order by rtime asc
               range between 50 preceding and current row) as recent,
           count(*) over (partition by epc order by rtime asc
               rows between unbounded preceding and current row) as seq
    from reads"""

FILTER_SQL = "select epc, rtime, val from reads where val >= 40"

WORKER_COUNTS = (0, 1, 2, 4)
BATCH_SIZES = (0, 1, 7)


def big_rows(partitions=64, per_partition=80):
    return [(f"epc{p:03d}", t * 5, (p * 37 + t * 11) % 97)
            for p in range(partitions) for t in range(per_partition)]


def make_db(rows):
    db = Database(options=PlannerOptions(parallel_windows=True))
    db.create_table("reads", SCHEMA)
    db.load("reads", rows)
    return db


def run_with_counters(db, sql):
    """(rows, per-operator actual_rows) — Exchange and CompiledSpine
    wrappers excluded so serial, sharded, and compiled plans line up
    node for node."""
    plan = db.plan(sql)
    rows = materialize(plan)
    counters = [(type(node).__name__, node.actual_rows)
                for node in plan.walk()
                if not isinstance(node, (ExchangeOp, CompiledSpineOp))]
    return rows, counters


@pytest.mark.parametrize("sql", [WINDOW_SQL, FILTER_SQL],
                         ids=["window", "filter"])
def test_determinism_across_workers_and_batches(sql, monkeypatch):
    rows = big_rows()
    assert len(rows) >= shard.SHARD_ROW_THRESHOLD
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    reference = None
    for workers in WORKER_COUNTS:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        db = make_db(rows)
        try:
            for batch_size in BATCH_SIZES:
                with forced_batch_size(batch_size):
                    out, counters = run_with_counters(db, sql)
                if reference is None:
                    reference = (out, counters)
                    continue
                assert out == reference[0], (workers, batch_size)
                assert counters == reference[1], (workers, batch_size)
        finally:
            db.close()


def test_pool_spawned_once_and_reused(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", 50)
    db = make_db(big_rows(partitions=10, per_partition=30))
    try:
        for _ in range(3):
            result, metrics = db.execute_with_metrics(FILTER_SQL)
        assert db.pool_spawns == 1
        assert db.pool_reuses >= 2
        assert metrics.sharded_segments == 1
        assert metrics.shard_workers == 2
        assert metrics.shard_morsels >= 2
        assert sum(metrics.shard_rows) == len(result.rows)
    finally:
        db.close()


def test_pool_respawns_after_mutation(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", 50)
    rows = big_rows(partitions=10, per_partition=30)
    db = make_db(rows)
    try:
        before = db.execute(FILTER_SQL)
        assert db.pool_spawns == 1
        extra = ("epc999", 1, 99)
        db.load("reads", [extra])
        after = db.execute(FILTER_SQL)
        # Fork-time snapshots are stale after the insert: a fresh pool
        # must serve the second query, and it must see the new row.
        assert db.pool_spawns == 2
        assert len(after.rows) == len(before.rows) + 1
        assert extra in after.rows
    finally:
        db.close()


def test_unarmed_or_disabled_exchange_falls_back(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", 50)
    rows = big_rows(partitions=10, per_partition=30)
    serial_db = make_db(rows)
    monkeypatch.setenv("REPRO_WORKERS", "0")
    expected = serial_db.execute(FILTER_SQL).rows
    monkeypatch.setenv("REPRO_WORKERS", "2")
    db = make_db(rows)
    try:
        plan = db.plan(FILTER_SQL)
        exchange = next(node for node in plan.walk()
                        if isinstance(node, ExchangeOp))
        # Knob flipped off between planning and execution: shard_pool()
        # returns None and the armed Exchange passes rows through.
        monkeypatch.setenv("REPRO_WORKERS", "0")
        plan.reset_metrics()
        assert materialize(plan) == expected
        assert exchange.workers_used == 0
        assert db.pool_spawns == 0
        # Detached (never armed) Exchange behaves the same way.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        exchange.database = None
        exchange.payload = None
        plan.reset_metrics()
        assert materialize(plan) == expected
        assert exchange.workers_used == 0
    finally:
        db.close()
        serial_db.close()


def test_below_threshold_plans_stay_serial(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    db = make_db(big_rows(partitions=4, per_partition=10))
    try:
        plan = db.plan(WINDOW_SQL)
        assert not any(isinstance(node, ExchangeOp)
                       for node in plan.walk())
        assert db.pool_spawns == 0
    finally:
        db.close()
