"""The append delta layer: epochs, delta log, incremental structures.

``Table.version`` is split into schema/data epochs and every append-only
mutation lands in a bounded delta log; ``SortedIndex.insert_many``,
the lazily-extending columnar cache, ``StatsRepository.apply_append``,
and ``Database.append`` ride that log so a trickle of new reads patches
warm state instead of rebuilding it. These tests pin each layer.
"""

import random

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.index import IndexRange, SortedIndex
from repro.minidb.table import Table, _DELTA_LOG_LIMIT

SCHEMA = TableSchema.of(("epc", SqlType.VARCHAR),
                        ("rtime", SqlType.TIMESTAMP),
                        ("v", SqlType.INTEGER))

ROWS = [(f"e{i % 5}", i * 10, i) for i in range(20)]


def make_table(rows=ROWS):
    table = Table("r", SCHEMA)
    table.bulk_load(rows)
    return table


class TestEpochs:
    def test_version_is_epoch_sum_and_monotone(self):
        table = Table("r", SCHEMA)
        assert table.version == 0
        table.insert(("e1", 1, 1))
        assert (table.schema_epoch, table.data_epoch) == (0, 1)
        table.create_index("rtime")
        assert (table.schema_epoch, table.data_epoch) == (1, 1)
        assert table.version == 2
        before = table.version
        table.append_rows([("e2", 2, 2)])
        assert table.version == before + 1
        assert table.schema_epoch == 1  # appends never move the schema

    def test_replace_rows_bumps_data_epoch(self):
        table = make_table()
        before = table.data_epoch
        table.replace_rows(ROWS[:5])
        assert table.data_epoch == before + 1

    def test_replace_rows_trusted_skips_coercion(self):
        table = make_table()
        table.create_index("rtime")
        rows = [table.rows[3], table.rows[1]]
        epoch = table.data_epoch
        table.replace_rows(rows, coerced=True)
        assert table.rows == rows  # stored as-is, no per-value coercion
        assert table.data_epoch == epoch + 1
        assert table.delta_since(epoch) is None  # history rebased
        index = table.index_on("rtime")
        assert sorted(index._positions) == [0, 1]  # indexes still rebuilt


class TestDeltaLog:
    def test_delta_since_current_epoch_is_empty(self):
        table = make_table()
        assert table.delta_since(table.data_epoch) == []

    def test_append_ranges_accumulate_in_epoch_order(self):
        table = make_table()
        epoch = table.data_epoch
        table.append_rows([("e9", 500, 1), ("e9", 510, 2)])
        table.insert(("e8", 600, 3))
        assert table.delta_since(epoch) == [(20, 2), (22, 1)]
        # A later captor sees only the later range.
        assert table.delta_since(epoch + 1) == [(22, 1)]

    def test_bulk_load_is_logged_as_append(self):
        table = make_table()
        epoch = table.data_epoch
        table.bulk_load([("e9", 500, 1)])
        assert table.delta_since(epoch) == [(20, 1)]

    def test_replace_rows_rebases_history(self):
        table = make_table()
        epoch = table.data_epoch
        table.replace_rows(ROWS[:5])
        assert table.delta_since(epoch) is None
        # A captor from after the rebase can still be answered.
        rebased = table.data_epoch
        table.append_rows([("e9", 500, 1)])
        assert table.delta_since(rebased) == [(5, 1)]

    def test_log_truncation_raises_floor(self):
        table = make_table()
        epoch = table.data_epoch
        for i in range(_DELTA_LOG_LIMIT + 1):
            table.insert(("e9", 1000 + i, i))
        assert table.delta_since(epoch) is None  # truncated past captor
        assert len(table.delta_since(table.data_epoch
                                     - _DELTA_LOG_LIMIT)) \
            == _DELTA_LOG_LIMIT

    def test_empty_append_is_a_no_op(self):
        table = make_table()
        epoch = table.data_epoch
        assert table.append_rows([]) == 0
        assert table.data_epoch == epoch


class TestIncrementalIndex:
    def entries(self, index):
        return list(zip(index._keys, index._positions))

    def test_insert_many_matches_repeated_insert(self):
        rng = random.Random(5)
        base = [(rng.randint(0, 50), pos) for pos in range(200)]
        fresh = [(rng.randint(0, 50), 200 + pos) for pos in range(60)]
        one_by_one = SortedIndex("a", "k")
        one_by_one.build(base)
        batched = SortedIndex("b", "k")
        batched.build(base)
        for key, position in fresh:
            one_by_one.insert(key, position)
        batched.insert_many(fresh)
        assert self.entries(batched) == self.entries(one_by_one)

    def test_insert_many_skips_nulls_and_handles_empty(self):
        index = SortedIndex("a", "k")
        index.build([(1, 0), (3, 1)])
        index.insert_many([])
        index.insert_many([(None, 2), (2, 3)])
        assert self.entries(index) == [(1, 0), (2, 3), (3, 1)]

    def test_insert_many_into_empty_index(self):
        index = SortedIndex("a", "k")
        index.insert_many([(3, 0), (1, 1), (None, 2)])
        assert self.entries(index) == [(1, 1), (3, 0)]

    def test_append_rows_keeps_index_queries_exact(self):
        table = make_table()
        table.create_index("rtime")
        table.append_rows([("e9", 55, 1), ("e9", 155, 2)])
        index = table.index_on("rtime")
        positions = sorted(index.scan(IndexRange(50, 160)))
        expected = sorted(
            pos for pos, row in enumerate(table.rows)
            if 50 <= row[1] <= 160)
        assert positions == expected
        assert index.count(IndexRange(50, 160)) == len(expected)


class TestColumnarAppend:
    def test_append_extends_cached_transpose_in_place(self):
        table = make_table()
        columns = table.columnar()
        table.append_rows([("e9", 500, 99)])
        assert table.columnar() is columns
        assert columns[0][-1] == "e9" and columns[2][-1] == 99
        assert [len(column) for column in columns] == [21, 21, 21]

    def test_transpose_matches_rebuild_after_appends(self):
        table = make_table()
        table.columnar()
        table.append_rows([("e9", 500, 99), ("e8", 510, 98)])
        table.insert(("e7", 520, 97))
        rebuilt = [list(column) for column in zip(*table.rows)]
        assert table.columnar() == rebuilt


class TestStatsPatch:
    def test_apply_append_updates_counts_and_bounds(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        table = db.table("r")
        stats_version = db.stats.version
        start = len(table.rows)
        table.append_rows([("e9", 5000, None), (None, -3, 7)])
        assert db.stats.apply_append(table, start)
        stats = db.stats.get("r")
        assert stats is not None  # re-stamped fresh, no invalidation
        assert stats.row_count == 22
        assert stats.column("rtime").max_value == 5000
        assert stats.column("rtime").min_value == -3
        assert stats.column("v").null_count == 1
        assert stats.column("epc").null_count == 1
        # Out-of-range values provably add distinct values.
        assert stats.column("rtime").ndv == 20 + 2
        # The repository version did not move: plans stay warm.
        assert db.stats.version == stats_version

    def test_apply_append_declines_without_fresh_entry(self):
        db = Database()
        db.create_table("r", SCHEMA)
        table = db.table("r")
        table.bulk_load(ROWS)  # direct load: no analyze ran
        assert not db.stats.apply_append(table, 0)

    def test_rebase_restamps_after_in_place_splice(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        table = db.table("r")
        stats_version = db.stats.version
        table.replace_rows(table.rows[:5], coerced=True)
        assert db.stats.rebase(table)
        stats = db.stats.get("r")  # fresh again: no eviction, no analyze
        assert stats is not None and stats.row_count == 5
        assert db.stats.version == stats_version  # plans stay warm

    def test_rebase_declines_without_entry(self):
        db = Database()
        db.create_table("r", SCHEMA)
        table = db.table("r")
        table.bulk_load(ROWS)  # never analyzed
        assert not db.stats.rebase(table)


class TestDatabaseAppend:
    def test_append_keeps_prepared_plan_warm(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        db.create_index("r", "rtime")
        sql = "select epc, v from r where rtime <= 100"
        db.execute(sql)
        db.execute(sql)
        hits = db.plan_cache.hits
        db.append("r", [("e9", 50, 99)])
        result = db.execute(sql)
        assert db.plan_cache.hits == hits + 1  # no replan after append
        assert ("e9", 99) in result.rows

    def test_load_still_invalidates_plans(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        sql = "select epc, v from r where rtime <= 100"
        db.execute(sql)
        misses = db.plan_cache.misses
        db.load("r", [("e9", 50, 99)])  # full analyze bumps stats version
        db.execute(sql)
        assert db.plan_cache.misses == misses + 1

    def test_append_accepts_mappings_and_analyzes_when_stale(self):
        db = Database()
        db.create_table("r", SCHEMA)
        table = db.table("r")
        table.bulk_load(ROWS)  # stats never analyzed -> fallback path
        appended = db.append("r", [{"epc": "e9", "rtime": 50, "v": 1}])
        assert appended == 1
        stats = db.stats.get("r")
        assert stats is not None and stats.row_count == 21

    def test_create_index_still_invalidates_plans(self):
        db = Database()
        db.create_table("r", SCHEMA)
        db.load("r", ROWS)
        sql = "select epc, v from r where rtime <= 100"
        db.execute(sql)
        misses = db.plan_cache.misses
        db.create_index("r", "rtime")
        db.execute(sql)  # schema epoch moved: must replan
        assert db.plan_cache.misses == misses + 1
