"""Planner tests: pushdown, window barrier, order sharing, join order."""

import pytest

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema
from repro.minidb.plan.physical import (
    FilterOp,
    HashJoinOp,
    IndexRangeScan,
    SortOp,
)
from repro.minidb.plan.window import WindowOp


@pytest.fixture
def db():
    database = Database()
    database.create_table("r", TableSchema.of(
        ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
        ("biz_loc", SqlType.VARCHAR)))
    database.load("r", [
        (f"e{i % 4}", i * 100, f"loc{i % 3}") for i in range(40)])
    database.create_index("r", "rtime")
    database.create_index("r", "epc")
    database.create_table("dim", TableSchema.of(
        ("biz_loc", SqlType.VARCHAR), ("site", SqlType.VARCHAR)))
    database.load("dim", [("loc0", "s0"), ("loc1", "s1"), ("loc2", "s0")])
    return database


def ops(plan, kind):
    return [node for node in plan.walk() if isinstance(node, kind)]


class TestPushdownAndIndexes:
    def test_filter_reaches_index(self, db):
        plan = db.plan("select epc from r where rtime < 500")
        scans = ops(plan, IndexRangeScan)
        assert len(scans) == 1
        assert scans[0].index.column == "rtime"

    def test_most_selective_index_chosen(self, db):
        plan = db.plan(
            "select epc from r where rtime < 3000 and epc = 'e1'")
        scans = ops(plan, IndexRangeScan)
        assert scans and scans[0].index.column == "epc"

    def test_residual_filter_retained(self, db):
        plan = db.plan(
            "select epc from r where rtime < 500 and biz_loc = 'loc1'")
        filters = ops(plan, FilterOp)
        assert any("biz_loc" in f.predicate.to_sql() for f in filters)

    def test_filter_pushed_below_join(self, db):
        plan = db.plan(
            "select r.epc from r, dim where r.biz_loc = dim.biz_loc "
            "and dim.site = 's1' and r.rtime < 900")
        joins = ops(plan, HashJoinOp)
        assert len(joins) == 1
        # Both join inputs should already be filtered.
        left, right = joins[0].left, joins[0].right
        side_labels = left.explain() + right.explain()
        assert "site" in side_labels and "IndexRangeScan" in side_labels

    def test_indexes_can_be_disabled(self, db):
        options = PlannerOptions(use_indexes=False)
        plan = db.plan("select epc from r where rtime < 500", options)
        assert not ops(plan, IndexRangeScan)


class TestWindowBarrier:
    CTE = ("with v as (select epc, rtime, "
           "max(biz_loc) over (partition by epc order by rtime asc "
           "rows between 1 preceding and 1 preceding) as prev "
           "from r) ")

    def test_sequence_key_filter_stays_above_window(self, db):
        plan = db.plan(self.CTE + "select * from v where rtime < 500")
        window = ops(plan, WindowOp)[0]
        # The filter must NOT be below the window: the window's subtree
        # scans the whole table.
        scan_rows = list(window.child.walk())[-1]
        assert scan_rows.estimated_rows == 40

    def test_partition_key_filter_pushes_below_window(self, db):
        plan = db.plan(self.CTE + "select * from v where epc = 'e1'")
        window = ops(plan, WindowOp)[0]
        below = window.child.explain()
        assert "epc" in below  # filter or index scan on epc below window

    def test_results_unaffected_by_barrier(self, db):
        # Semantics check: filtering above vs the engine's plan agree.
        sql = self.CTE + "select epc, rtime, prev from v where rtime < 900"
        rows = db.execute(sql).as_set()
        all_rows = db.execute(self.CTE + "select epc, rtime, prev from v")
        expected = {row for row in all_rows if row[1] < 900}
        assert rows == expected


class TestOrderSharing:
    TWO_WINDOWS = (
        "select max(rtime) over (partition by epc order by rtime asc "
        "rows between 1 preceding and 1 preceding) as a, "
        "max(biz_loc) over (partition by epc order by rtime asc "
        "rows between 1 preceding and 1 preceding) as b from r")

    def test_same_keys_share_one_window_node(self, db):
        plan = db.plan(self.TWO_WINDOWS)
        windows = ops(plan, WindowOp)
        assert len(windows) == 1
        assert len(windows[0].functions) == 2

    def test_stacked_windows_share_sort(self, db):
        sql = ("with v as (select epc, rtime, max(biz_loc) over "
               "(partition by epc order by rtime asc rows between 1 "
               "preceding and 1 preceding) as prev from r) "
               "select max(prev) over (partition by epc order by rtime asc "
               "rows between 1 preceding and 1 preceding) from v")
        plan = db.plan(sql)
        windows = ops(plan, WindowOp)
        assert len(windows) == 2
        presorted = [w.presorted for w in windows]
        assert presorted.count(True) == 1  # the upper one reuses the order

    def test_order_sharing_can_be_disabled(self, db):
        sql = ("with v as (select epc, rtime, max(biz_loc) over "
               "(partition by epc order by rtime asc rows between 1 "
               "preceding and 1 preceding) as prev from r) "
               "select max(prev) over (partition by epc order by rtime asc "
               "rows between 1 preceding and 1 preceding) from v")
        options = PlannerOptions(order_sharing=False)
        windows = ops(db.plan(sql, options), WindowOp)
        assert all(not w.presorted for w in windows)

    def test_order_by_satisfied_by_index_scan(self, db):
        plan = db.plan(
            "select rtime from r where rtime < 2000 order by rtime asc")
        assert not ops(plan, SortOp)

    def test_order_by_needs_sort_without_index_order(self, db):
        plan = db.plan("select biz_loc from r order by biz_loc asc")
        assert ops(plan, SortOp)


class TestJoinPlanning:
    def test_build_side_is_smaller_input(self, db):
        plan = db.plan(
            "select r.epc from r, dim where r.biz_loc = dim.biz_loc")
        join = ops(plan, HashJoinOp)[0]
        assert join.right.estimated_rows <= join.left.estimated_rows

    def test_three_way_join(self, db):
        db.create_table("dim2", TableSchema.of(
            ("site", SqlType.VARCHAR), ("region", SqlType.VARCHAR)))
        db.load("dim2", [("s0", "west"), ("s1", "east")])
        rs = db.execute(
            "select dim2.region, count(*) from r, dim, dim2 "
            "where r.biz_loc = dim.biz_loc and dim.site = dim2.site "
            "group by dim2.region")
        assert dict((row[0], row[1]) for row in rs) == {
            "west": 27, "east": 13}

    def test_cross_join_without_predicate(self, db):
        rs = db.execute("select count(*) from r, dim")
        assert rs.scalar() == 40 * 3
