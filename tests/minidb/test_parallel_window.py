"""Shard-parallel execution must be invisible.

The persistent worker pool partitions eligible plan segments across the
base scan and merges shard outputs in deterministic order; results must
be byte-identical to the serial path, and the path must degrade
gracefully (small inputs, REPRO_WORKERS unset / 0 / junk).
"""

import warnings

import pytest

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema
from repro.minidb import parallel
from repro.minidb.parallel import configured_worker_count
from repro.minidb.plan import shard

SCHEMA = TableSchema.of(("g", SqlType.VARCHAR),
                        ("t", SqlType.TIMESTAMP),
                        ("v", SqlType.INTEGER))

WINDOW_SQL = """
    select g, t, v,
           sum(v) over (partition by g order by t asc
               range between 100 preceding and current row) as recent,
           max(v) over (partition by g order by t asc
               rows between 1 preceding and 1 preceding) as prev
    from w"""

FILTER_SQL = "select g, t, v from w where v >= 40"


def make_db(rows):
    db = Database(options=PlannerOptions(parallel_windows=True))
    db.create_table("w", SCHEMA)
    db.load("w", rows)
    return db


def big_rows(partitions=40, per_partition=200):
    return [(f"g{p:02d}", t * 7, (p * 31 + t) % 97)
            for p in range(partitions) for t in range(per_partition)]


def run(rows, sql, monkeypatch, workers, threshold=None):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    if workers is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
    if threshold is not None:
        monkeypatch.setattr(shard, "SHARD_ROW_THRESHOLD", threshold)
    db = make_db(rows)
    try:
        return db.execute(sql)
    finally:
        db.close()


def test_sharded_window_matches_serial(monkeypatch):
    rows = big_rows()
    serial = run(rows, WINDOW_SQL, monkeypatch, workers=None)
    sharded = run(rows, WINDOW_SQL, monkeypatch, workers=2, threshold=64)
    assert sharded.rows == serial.rows


def test_sharded_filter_matches_serial(monkeypatch):
    rows = big_rows()
    serial = run(rows, FILTER_SQL, monkeypatch, workers=None)
    sharded = run(rows, FILTER_SQL, monkeypatch, workers=2, threshold=64)
    assert sharded.rows == serial.rows


def test_small_input_stays_serial(monkeypatch):
    rows = big_rows(partitions=4, per_partition=10)
    assert len(rows) < shard.SHARD_ROW_THRESHOLD
    serial = run(rows, WINDOW_SQL, monkeypatch, workers=None)
    sharded = run(rows, WINDOW_SQL, monkeypatch, workers=2)
    assert sharded.rows == serial.rows


def test_env_zero_disables_workers(monkeypatch):
    rows = big_rows(partitions=8, per_partition=20)
    serial = run(rows, WINDOW_SQL, monkeypatch, workers=None)
    disabled = run(rows, WINDOW_SQL, monkeypatch, workers=0, threshold=1)
    assert disabled.rows == serial.rows


def test_worker_count_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert configured_worker_count() == 3
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    assert configured_worker_count() == 0
    monkeypatch.setenv("REPRO_WORKERS", "-2")
    assert configured_worker_count() == 0
    monkeypatch.delenv("REPRO_WORKERS")
    # Opt-in: unset means serial, unlike the retired fork-per-query pool.
    assert configured_worker_count() == 0


def test_deprecated_alias_and_priority(monkeypatch):
    # Pre-latch the one-shot deprecation warning; it has its own test.
    monkeypatch.setattr(parallel, "_alias_warning_emitted", True)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    assert configured_worker_count() == 2
    # REPRO_WORKERS wins over the alias whenever it is set at all.
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert configured_worker_count() == 4
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    assert configured_worker_count() == 0


def test_deprecated_alias_warns_once(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    monkeypatch.setattr(parallel, "_alias_warning_emitted", False)
    with pytest.warns(DeprecationWarning, match="REPRO_PARALLEL"):
        assert configured_worker_count() == 2
    # One-shot: the second read of the alias is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert configured_worker_count() == 2
    # Reading REPRO_WORKERS never warns, even with the alias also set.
    monkeypatch.setattr(parallel, "_alias_warning_emitted", False)
    monkeypatch.setenv("REPRO_WORKERS", "4")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert configured_worker_count() == 4
