"""Parallel per-partition window evaluation must be invisible.

The fork-pool path splits partitions into contiguous spans and
evaluates each span in a worker; results must be byte-identical to the
serial path, and the path must degrade gracefully (small inputs, one
partition, REPRO_PARALLEL=0, or platforms without fork).
"""

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema
from repro.minidb.plan.window import (
    PARALLEL_ROW_THRESHOLD,
    configured_worker_count,
)

SCHEMA = TableSchema.of(("g", SqlType.VARCHAR),
                        ("t", SqlType.TIMESTAMP),
                        ("v", SqlType.INTEGER))

WINDOW_SQL = """
    select g, t, v,
           sum(v) over (partition by g order by t asc
               range between 100 preceding and current row) as recent,
           max(v) over (partition by g order by t asc
               rows between 1 preceding and 1 preceding) as prev
    from w"""


def make_db(rows, parallel):
    db = Database(options=PlannerOptions(parallel_windows=parallel))
    db.create_table("w", SCHEMA)
    db.load("w", rows)
    return db


def big_rows(partitions=40, per_partition=200):
    return [(f"g{p:02d}", t * 7, (p * 31 + t) % 97)
            for p in range(partitions) for t in range(per_partition)]


def test_parallel_matches_serial_above_threshold(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    rows = big_rows()
    assert len(rows) >= PARALLEL_ROW_THRESHOLD
    serial = make_db(rows, parallel=False).execute(WINDOW_SQL)
    parallel = make_db(rows, parallel=True).execute(WINDOW_SQL)
    assert parallel.rows == serial.rows


def test_small_input_stays_serial(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    rows = big_rows(partitions=4, per_partition=10)
    serial = make_db(rows, parallel=False).execute(WINDOW_SQL)
    parallel = make_db(rows, parallel=True).execute(WINDOW_SQL)
    assert parallel.rows == serial.rows


def test_env_zero_disables_workers(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    assert configured_worker_count() == 0
    rows = big_rows(partitions=8, per_partition=20)
    serial = make_db(rows, parallel=False).execute(WINDOW_SQL)
    parallel = make_db(rows, parallel=True).execute(WINDOW_SQL)
    assert parallel.rows == serial.rows


def test_env_overrides_worker_count(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "3")
    assert configured_worker_count() == 3
    monkeypatch.setenv("REPRO_PARALLEL", "not-a-number")
    assert configured_worker_count() == 0
    monkeypatch.delenv("REPRO_PARALLEL")
    assert configured_worker_count() >= 1
