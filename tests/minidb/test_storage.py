"""Storage engine unit + property tests: serde, pages, pool, B-tree.

Property tests use Hypothesis over the actual minidb value domain —
NULL, booleans, arbitrary-precision integers (INTEGER / TIMESTAMP /
INTERVAL are all stored as Python ints), bit-exact doubles including
NaN and infinities, and unicode strings with surrogates. (The issue's
"Decimal" does not exist as a minidb type; DOUBLE is the only inexact
numeric, so doubles get the bit-equality treatment instead.)
"""

from __future__ import annotations

import os
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StorageCorruptionError, StorageError
from repro.minidb.engine import Database
from repro.minidb.index import IndexRange, SortedIndex
from repro.minidb.schema import TableSchema
from repro.minidb.storage.backend import DiskStorage
from repro.minidb.storage.btree import BTreeBackedIndex
from repro.minidb.storage.heap import DiskRowStore
from repro.minidb.storage.page import (
    KIND_HEAP,
    decode_page,
    encode_page,
)
from repro.minidb.storage.serde import (
    decode_row,
    decode_value,
    encode_row,
    encode_value,
)
from repro.minidb.types import SqlType

READS = TableSchema.of(
    ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
    ("loc", SqlType.INTEGER), ("v", SqlType.DOUBLE),
    ("ok", SqlType.BOOLEAN), ("rtime", SqlType.TIMESTAMP))


def _bits(value: float) -> int:
    return struct.unpack(">Q", struct.pack(">d", value))[0]


# One strategy per storable value shape; TIMESTAMP/INTERVAL are ints (or
# float intervals), so huge ints double as their coverage.
sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: varint zigzag must handle any magnitude
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=60),
)


class TestSerde:
    @given(sql_values)
    @settings(max_examples=300, deadline=None)
    def test_value_round_trip(self, value):
        out = bytearray()
        encode_value(out, value)
        decoded, offset = decode_value(bytes(out), 0)
        assert offset == len(out)
        if isinstance(value, float):
            assert isinstance(decoded, float)
            assert _bits(decoded) == _bits(value)  # NaN-safe, -0.0-safe
        else:
            assert decoded == value
            assert type(decoded) is type(value) or value is None

    @given(st.lists(sql_values, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_row_round_trip(self, values):
        row = tuple(values)
        decoded = decode_row(encode_row(row))
        assert len(decoded) == len(row)
        for got, want in zip(decoded, row):
            if isinstance(want, float):
                assert _bits(got) == _bits(want)
            else:
                assert got == want

    def test_bool_is_not_int(self):
        # bools must survive as bools, ints as ints (True != 1 on disk).
        assert decode_row(encode_row((True, 1, False, 0))) == \
            (True, 1, False, 0)
        decoded = decode_row(encode_row((True, 1)))
        assert isinstance(decoded[0], bool)
        assert not isinstance(decoded[1], bool)


class TestPageCodec:
    @given(st.lists(st.binary(max_size=40), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, cells):
        page = encode_page(KIND_HEAP, cells, 2048)
        assert len(page) == 2048
        kind, decoded = decode_page(page)
        assert kind == KIND_HEAP
        assert decoded == cells

    def test_torn_page_detected(self):
        page = encode_page(KIND_HEAP, [b"hello", b"world"], 512)
        torn = page[:256] + bytes(256)
        with pytest.raises(StorageCorruptionError):
            decode_page(torn)

    def test_overflow_rejected(self):
        with pytest.raises(StorageError):
            encode_page(KIND_HEAP, [bytes(600)], 512)


@pytest.fixture()
def disk_db(tmp_path):
    db = Database(storage="disk",
                  storage_path=str(tmp_path / "db"),
                  buffer_pages=8, page_size=512)
    yield db
    db.shutdown()


def _load_reads(db, count, start=0):
    rows = [(i, f"epc{i % 13}", i % 7, i * 0.5, i % 2 == 0,
             1_000_000 + i) for i in range(start, start + count)]
    if "reads" not in db.catalog:
        db.create_table("reads", READS)
    db.load("reads", rows)
    return rows


class TestBufferPoolBound:
    def test_peak_resident_never_exceeds_pool(self, disk_db):
        """Scanning a table ~10x the pool size stays within the bound."""
        rows = _load_reads(disk_db, 2000)
        store = disk_db.table("reads").rows
        assert isinstance(store, DiskRowStore)
        pages = len(store.page_ids)
        assert pages >= 10 * 8, f"only {pages} pages; grow the dataset"
        pager = disk_db.storage.pager
        for _ in range(3):
            assert list(disk_db.table("reads").scan()) == rows
        assert pager.peak_resident <= 8
        assert pager.overflow_events == 0
        assert pager.pages_read >= pages  # every page faulted at least once
        assert pager.pages_evicted >= pager.pages_read - 8

    def test_execution_metrics_expose_storage_counters(self, disk_db):
        _load_reads(disk_db, 2000)
        _, metrics = disk_db.execute_with_metrics(
            "SELECT COUNT(*) AS n, SUM(loc) AS s FROM reads")
        assert metrics.pages_read > 0
        assert metrics.pages_evicted > 0
        assert metrics.wal_bytes == 0  # read-only query writes no WAL
        before = disk_db.storage.counters["wal_bytes"]
        disk_db.append("reads", [(9_999, "epcx", 1, 0.5, True, 2)])
        assert disk_db.storage.counters["wal_bytes"] > before

    def test_strided_and_negative_indexing(self, disk_db):
        rows = _load_reads(disk_db, 500)
        store = disk_db.table("reads").rows
        assert store[::7] == rows[::7]  # cache.py samples with step slices
        assert store[-1] == rows[-1]
        assert store[37:245] == rows[37:245]
        assert store[245:37] == []
        with pytest.raises(IndexError):
            store[len(rows)]


class TestDiskIndexParity:
    """BTreeBackedIndex must reproduce SortedIndex behaviour exactly."""

    RANGES = [
        IndexRange(),
        IndexRange(low="epc3"),
        IndexRange(high="epc7", high_inclusive=False),
        IndexRange(low="epc1", high="epc9"),
        IndexRange(low="epc4", high="epc4"),
        IndexRange(low="epc2", low_inclusive=False, high="epc8",
                   high_inclusive=False),
    ]

    def _pair(self, disk_db, count=700):
        _load_reads(disk_db, count)
        table = disk_db.table("reads")
        disk_index = table.create_index("epc")
        assert isinstance(disk_index, BTreeBackedIndex)
        memory_index = SortedIndex("m", "epc")
        key = table.schema.position_of("epc")
        memory_index.build((row[key], position)
                           for position, row in enumerate(table.rows))
        return table, disk_index, memory_index

    def test_scan_and_count_parity(self, disk_db):
        _, disk_index, memory_index = self._pair(disk_db)
        assert len(disk_index) == len(memory_index)
        assert disk_index.min_key() == memory_index.min_key()
        assert disk_index.max_key() == memory_index.max_key()
        for key_range in self.RANGES:
            assert list(disk_index.scan(key_range)) == \
                list(memory_index.scan(key_range))
            assert disk_index.count(key_range) == \
                memory_index.count(key_range)

    def test_parity_survives_inserts_and_appends(self, disk_db):
        table, disk_index, memory_index = self._pair(disk_db, 200)
        key = table.schema.position_of("epc")
        start = len(table.rows)
        fresh = [(start + i, f"epc{i % 13}", 0, 0.0, True, i)
                 for i in range(150)]
        table.append_rows(fresh)  # insert_many path
        memory_index.insert_many(
            (row[key], start + offset)
            for offset, row in enumerate(
                table._coerce_row(r) for r in fresh))
        table.insert((start + 150, "epc5", 0, 0.0, False, 1))
        memory_index.insert("epc5", start + 150)
        for key_range in self.RANGES:
            assert list(disk_index.scan(key_range)) == \
                list(memory_index.scan(key_range))
        disk_index.tree.check_invariants()


class _TreeHarness:
    """A standalone DiskStorage + tree pair for property tests."""

    def __init__(self, tmp_path, page_size=256, buffer_pages=8):
        self.storage = DiskStorage(path=str(tmp_path),
                                   page_size=page_size,
                                   buffer_pages=buffer_pages, sync=False)
        from repro.minidb.storage.btree import DiskBTree

        self.tree = DiskBTree(self.storage)

    def close(self):
        self.storage.simulate_crash()  # skip checkpoint: no catalog


class TestBTreeProperties:
    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 10_000)),
                    max_size=300))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_inserts_match_model(self, tmp_path_factory, pairs):
        harness = _TreeHarness(tmp_path_factory.mktemp("tree"))
        try:
            model = SortedIndex("m", "k")
            for key, position in pairs:
                harness.tree.insert(key, position)
                model.insert(key, position)
            harness.tree.check_invariants()  # sorted, balanced, sized
            everything = IndexRange()
            assert list(harness.tree.scan(everything)) == \
                list(model.scan(everything))
            assert len(harness.tree) == len(model)
            lo, hi = -17, 23
            window = IndexRange(low=lo, high=hi, high_inclusive=False)
            assert list(harness.tree.scan(window)) == \
                list(model.scan(window))
            assert harness.tree.count(window) == model.count(window)
        finally:
            harness.close()

    @given(st.lists(st.tuples(st.text(max_size=8), st.integers(0, 10_000)),
                    max_size=200))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_bulk_build_matches_sorted_insert_order(self, tmp_path_factory,
                                                    pairs):
        harness = _TreeHarness(tmp_path_factory.mktemp("tree"))
        try:
            harness.tree.build(pairs)
            harness.tree.check_invariants()
            model = SortedIndex("m", "k")
            model.build(pairs)
            assert list(harness.tree.scan(IndexRange())) == \
                list(model.scan(IndexRange()))
        finally:
            harness.close()

    def test_duplicate_keys_keep_insertion_order(self, tmp_path):
        harness = _TreeHarness(tmp_path)
        try:
            for position in range(500):
                harness.tree.insert("same", position)
            harness.tree.check_invariants()
            assert list(harness.tree.scan(IndexRange.equals("same"))) == \
                list(range(500))
        finally:
            harness.close()


class TestHeapProperties:
    @given(st.lists(st.tuples(st.integers(), st.text(max_size=20),
                              st.floats(allow_nan=False)),
                    max_size=120))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_store_is_list_equivalent(self, tmp_path_factory, rows):
        storage = DiskStorage(path=str(tmp_path_factory.mktemp("heap")),
                              page_size=256, buffer_pages=4, sync=False)
        try:
            store = DiskRowStore(storage, "t")
            half = len(rows) // 2
            store.extend(rows[:half])
            store.extend(rows[half:])
            assert list(store) == rows
            assert store == rows
            for i in range(0, len(rows), 7):
                assert store[i] == rows[i]
            store.replace(rows[::-1])
            assert list(store) == rows[::-1]
        finally:
            storage.simulate_crash()


class TestKnobs:
    def test_env_knobs_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "disk")
        monkeypatch.setenv("REPRO_BUFFER_PAGES", "5")
        monkeypatch.setenv("REPRO_PAGE_SIZE", "1024")
        db = Database(storage_path=str(tmp_path / "db"))
        try:
            assert db.storage is not None
            assert db.storage.pager.capacity == 5
            assert db.storage.page_size == 1024
        finally:
            db.shutdown()

    def test_existing_manifest_pins_page_size(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(storage="disk", storage_path=path, page_size=512)
        _load_reads(db, 20)
        db.shutdown()
        # Reopen with a different configured size: manifest wins.
        db2 = Database(storage="disk", storage_path=path, page_size=4096)
        try:
            assert db2.storage.page_size == 512
            assert len(db2.table("reads").rows) == 20
        finally:
            db2.shutdown()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Database(storage="papyrus")

    def test_memory_stays_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        db = Database()
        assert db.storage is None
        assert isinstance(Database().catalog, type(db.catalog))
