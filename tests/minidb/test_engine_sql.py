"""End-to-end SQL execution tests against the Database facade."""

import pytest

from repro.minidb import Database, SqlType, TableSchema


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", TableSchema.of(
        ("k", SqlType.INTEGER), ("grp", SqlType.VARCHAR),
        ("v", SqlType.INTEGER)))
    database.load("t", [
        (1, "a", 10), (2, "a", 20), (3, "b", 30), (4, "b", None),
        (5, "c", 50)])
    database.create_table("d", TableSchema.of(
        ("k", SqlType.INTEGER), ("label", SqlType.VARCHAR)))
    database.load("d", [(1, "one"), (2, "two"), (3, "three")])
    return database


class TestBasics:
    def test_projection_and_filter(self, db):
        rs = db.execute("select k, v from t where v > 15")
        assert rs.as_set() == {(2, 20), (3, 30), (5, 50)}

    def test_expression_in_select(self, db):
        rs = db.execute("select k * 2 + 1 as x from t where k = 3")
        assert rs.scalar() == 7

    def test_order_by_desc(self, db):
        rs = db.execute("select k from t order by k desc limit 2")
        assert rs.rows == [(5,), (4,)]

    def test_limit_zero(self, db):
        assert len(db.execute("select k from t limit 0")) == 0

    def test_distinct(self, db):
        rs = db.execute("select distinct grp from t")
        assert rs.as_set() == {("a",), ("b",), ("c",)}

    def test_null_comparison_filters_row(self, db):
        rs = db.execute("select k from t where v > 0")
        assert (4,) not in rs.as_set()  # v is NULL there

    def test_is_null(self, db):
        rs = db.execute("select k from t where v is null")
        assert rs.rows == [(4,)]


class TestAggregation:
    def test_group_by(self, db):
        rs = db.execute(
            "select grp, count(*), sum(v) from t group by grp")
        assert rs.as_set() == {("a", 2, 30), ("b", 2, 30), ("c", 1, 50)}

    def test_count_ignores_nulls_count_star_does_not(self, db):
        rs = db.execute(
            "select count(v), count(*) from t where grp = 'b'")
        assert rs.rows == [(1, 2)]

    def test_having(self, db):
        rs = db.execute(
            "select grp from t group by grp having count(*) > 1")
        assert rs.as_set() == {("a",), ("b",)}

    def test_global_aggregate_on_empty_input(self, db):
        rs = db.execute("select count(*), max(v) from t where k > 99")
        assert rs.rows == [(0, None)]

    def test_avg(self, db):
        assert db.execute(
            "select avg(v) from t where grp = 'a'").scalar() == 15.0

    def test_count_distinct(self, db):
        assert db.execute("select count(distinct grp) from t").scalar() == 3


class TestJoins:
    def test_comma_join_with_where(self, db):
        rs = db.execute(
            "select t.k, d.label from t, d where t.k = d.k")
        assert rs.as_set() == {(1, "one"), (2, "two"), (3, "three")}

    def test_explicit_inner_join(self, db):
        rs = db.execute(
            "select t.k from t join d on t.k = d.k where d.label = 'two'")
        assert rs.rows == [(2,)]

    def test_left_join_pads_nulls(self, db):
        rs = db.execute(
            "select t.k, d.label from t left join d on t.k = d.k "
            "order by k asc")
        assert rs.rows == [(1, "one"), (2, "two"), (3, "three"),
                           (4, None), (5, None)]

    def test_non_equi_join(self, db):
        rs = db.execute(
            "select t.k, d.k from t, d where t.k < d.k and t.k = 2")
        assert rs.as_set() == {(2, 3)}

    def test_in_subquery(self, db):
        rs = db.execute(
            "select k from t where k in (select k from d where "
            "label != 'two')")
        assert rs.as_set() == {(1,), (3,)}

    def test_not_in_subquery(self, db):
        rs = db.execute(
            "select k from t where k not in (select k from d)")
        assert rs.as_set() == {(4,), (5,)}


class TestCtesAndSetOps:
    def test_cte(self, db):
        rs = db.execute(
            "with big as (select k, v from t where v >= 30) "
            "select count(*) from big")
        assert rs.scalar() == 2

    def test_cte_referenced_in_join(self, db):
        rs = db.execute(
            "with small as (select k from t where k <= 2) "
            "select d.label from small, d where small.k = d.k")
        assert rs.as_set() == {("one",), ("two",)}

    def test_union_all_keeps_duplicates(self, db):
        rs = db.execute(
            "select grp from t where k = 1 union all "
            "select grp from t where k = 2")
        assert rs.rows == [("a",), ("a",)]

    def test_union_distinct_dedupes(self, db):
        rs = db.execute(
            "select grp from t where k = 1 union "
            "select grp from t where k = 2")
        assert rs.rows == [("a",)]


class TestExplainAndMetrics:
    def test_explain_reports_cost_and_text(self, db):
        explained = db.explain("select k from t where k < 3")
        assert explained.estimated_cost > 0
        assert "Project" in explained.text

    def test_index_used_for_range(self, db):
        db.create_index("t", "k")
        explained = db.explain("select k from t where k <= 2")
        assert "IndexRangeScan" in explained.text

    def test_index_skipped_when_unselective(self, db):
        db.create_index("t", "k")
        explained = db.explain("select k from t where k <= 1000")
        assert "IndexRangeScan" not in explained.text

    def test_metrics_counts_rows(self, db):
        _, metrics = db.execute_with_metrics("select k from t")
        assert metrics.rows_emitted > 0
        assert metrics.operators >= 2

    def test_window_sort_counted(self, db):
        _, metrics = db.execute_with_metrics(
            "select max(v) over (partition by grp order by k asc) from t")
        assert metrics.sort_operators == 1
        assert metrics.rows_sorted == 5


class TestResultSet:
    def test_to_dicts(self, db):
        dicts = db.execute("select k, grp from t where k = 1").to_dicts()
        assert dicts == [{"k": 1, "grp": "a"}]

    def test_scalar_requires_1x1(self, db):
        with pytest.raises(ValueError):
            db.execute("select k from t").scalar()

    def test_pretty_renders(self, db):
        text = db.execute("select k from t order by k asc").pretty(limit=2)
        assert "more rows" in text


class TestExplainAnalyze:
    def test_actual_rows_reported(self, db):
        explained = db.explain_analyze("select k from t where k <= 2")
        assert "actual rows=2" in explained.text

    def test_plain_explain_has_no_actuals(self, db):
        explained = db.explain("select k from t")
        assert "actual rows" not in explained.text
