"""Physical-operator unit tests: join edge cases, NULL key semantics,
semi-join NOT IN behaviour, ordering propagation, and metrics counters.
"""

import pytest

from repro.minidb import Database, PlannerOptions, SqlType, TableSchema


@pytest.fixture
def db():
    database = Database()
    database.create_table("a", TableSchema.of(
        ("k", SqlType.INTEGER), ("x", SqlType.VARCHAR)))
    database.load("a", [(1, "one"), (2, "two"), (None, "null-key"),
                        (3, "three")])
    database.create_table("b", TableSchema.of(
        ("k", SqlType.INTEGER), ("y", SqlType.VARCHAR)))
    database.load("b", [(1, "uno"), (1, "ein"), (None, "nix")])
    return database


class TestJoinNullSemantics:
    def test_null_keys_never_join(self, db):
        rs = db.execute("select a.x, b.y from a, b where a.k = b.k")
        assert rs.as_set() == {("one", "uno"), ("one", "ein")}

    def test_left_join_null_key_row_padded(self, db):
        rs = db.execute(
            "select a.x, b.y from a left join b on a.k = b.k")
        assert ("null-key", None) in rs.as_set()
        assert ("two", None) in rs.as_set()

    def test_duplicate_build_rows_multiply(self, db):
        rs = db.execute("select count(*) from a, b where a.k = b.k")
        assert rs.scalar() == 2

    def test_join_with_residual_condition(self, db):
        rs = db.execute(
            "select a.x, b.y from a, b where a.k = b.k and b.y != 'uno'")
        assert rs.as_set() == {("one", "ein")}

    def test_left_join_residual_in_on_clause(self, db):
        rs = db.execute(
            "select a.x, b.y from a left join b "
            "on a.k = b.k and b.y = 'uno'")
        assert ("one", "uno") in rs.as_set()
        assert ("one", None) not in rs.as_set()
        assert ("two", None) in rs.as_set()


class TestSemiJoinSemantics:
    def test_in_ignores_null_left_keys(self, db):
        rs = db.execute("select x from a where k in (select k from b)")
        assert rs.as_set() == {("one",)}

    def test_not_in_with_null_on_right_yields_nothing(self, db):
        rs = db.execute(
            "select x from a where k not in (select k from b)")
        assert rs.rows == []

    def test_not_in_without_nulls(self, db):
        rs = db.execute(
            "select x from a where k not in "
            "(select k from b where k is not null)")
        assert rs.as_set() == {("two",), ("three",)}


class TestNestedLoopFallback:
    def test_inequality_join_uses_nested_loop(self, db):
        plan = db.plan("select a.k, b.k from a, b where a.k < b.k")
        assert "NestedLoopJoin" in plan.explain()
        rs = db.execute("select count(*) from a, b where a.k < b.k")
        assert rs.scalar() == 0  # b.k values are all 1 or NULL

    def test_cross_join_cardinality(self, db):
        assert db.execute("select count(*) from a, b").scalar() == 12


class TestOrderingPropagation:
    def test_index_order_survives_filter_and_project(self, db):
        db.create_index("a", "k")
        plan = db.plan("select k from a where k >= 1 and x != 'zzz' "
                       "order by k asc")
        # No explicit sort: IndexRangeScan order flows through
        # Filter and Project into the ORDER BY.
        assert "Sort" not in plan.explain()

    def test_projection_breaks_order_for_computed_columns(self, db):
        db.create_index("a", "k")
        plan = db.plan("select k + 1 as k2 from a where k >= 1 "
                       "order by k2 asc")
        assert "Sort" in plan.explain()

    def test_descending_requires_sort(self, db):
        db.create_index("a", "k")
        plan = db.plan("select k from a where k >= 1 order by k desc")
        assert "Sort" in plan.explain()


class TestActualRowCounters:
    def test_counters_populated(self, db):
        plan = db.plan("select x from a where k is not null")
        rows = list(plan.rows())
        assert len(rows) == 3
        assert plan.actual_rows == 3
        scan = list(plan.walk())[-1]
        assert scan.actual_rows == 4

    def test_rerun_accumulates(self, db):
        plan = db.plan("select x from a")
        list(plan.rows())
        list(plan.rows())
        assert plan.actual_rows == 8


class TestNaiveWindowOption:
    def test_results_identical(self, db):
        sql = ("select k, count(*) over (order by k asc rows between "
               "1 preceding and current row) as c from a where "
               "k is not null")
        fast = db.execute(sql).as_set()
        slow = db.execute(sql, options=PlannerOptions(naive_windows=True))
        assert fast == slow.as_set()
