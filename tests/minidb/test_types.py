"""Unit and property tests for the SQL value-type layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.minidb.types import (
    SqlType,
    coerce_value,
    compare_values,
    format_timestamp,
    is_comparable,
    minutes,
    hours,
    days,
    parse_timestamp,
    sort_key,
    sql_and,
    sql_not,
    sql_or,
)

TRUTH = (True, False, None)


class TestCoercion:
    def test_integer_accepts_int(self):
        assert coerce_value(7, SqlType.INTEGER) == 7

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, SqlType.INTEGER)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("7", SqlType.INTEGER)

    def test_double_widens_int(self):
        value = coerce_value(3, SqlType.DOUBLE)
        assert value == 3.0 and isinstance(value, float)

    def test_varchar_accepts_str(self):
        assert coerce_value("abc", SqlType.VARCHAR) == "abc"

    def test_null_accepted_by_every_type(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_timestamp_is_epoch_int(self):
        assert coerce_value(1_000_000, SqlType.TIMESTAMP) == 1_000_000
        with pytest.raises(TypeMismatchError):
            coerce_value(1.5, SqlType.TIMESTAMP)

    def test_boolean(self):
        assert coerce_value(True, SqlType.BOOLEAN) is True
        with pytest.raises(TypeMismatchError):
            coerce_value(1, SqlType.BOOLEAN)


class TestComparability:
    def test_same_type(self):
        assert is_comparable(SqlType.VARCHAR, SqlType.VARCHAR)

    def test_numeric_cross_type(self):
        assert is_comparable(SqlType.TIMESTAMP, SqlType.INTEGER)
        assert is_comparable(SqlType.INTERVAL, SqlType.DOUBLE)

    def test_string_vs_number(self):
        assert not is_comparable(SqlType.VARCHAR, SqlType.INTEGER)


class TestThreeValuedLogic:
    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_and_matches_kleene_table(self, a, b):
        if a is False or b is False:
            assert sql_and(a, b) is False
        elif a is None or b is None:
            assert sql_and(a, b) is None
        else:
            assert sql_and(a, b) is True

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
        assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)

    def test_not_of_null(self):
        assert sql_not(None) is None


class TestComparison:
    def test_null_propagates(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_orders(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)), max_size=30))
    def test_sort_key_total_order_nulls_first(self, values):
        ordered = sorted(values, key=sort_key)
        nulls = [v for v in ordered if v is None]
        rest = [v for v in ordered if v is not None]
        assert ordered == nulls + rest
        assert rest == sorted(rest)


class TestTimestamps:
    def test_round_trip(self):
        text = "2006-09-12 10:30:00"
        assert format_timestamp(parse_timestamp(text)) == text

    def test_date_only(self):
        assert format_timestamp(parse_timestamp("2006-09-12")) \
            == "2006-09-12 00:00:00"

    def test_bad_literal(self):
        with pytest.raises(TypeMismatchError):
            parse_timestamp("not a timestamp")

    def test_null_formats_to_none(self):
        assert format_timestamp(None) is None

    def test_interval_helpers(self):
        assert minutes(5) == 300
        assert hours(2) == 7200
        assert days(1) == 86400
        assert minutes(0.5) == 30
