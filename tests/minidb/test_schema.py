"""Tests for Column/TableSchema and plan schemas."""

import pytest

from repro.errors import PlanningError, SchemaError
from repro.minidb.plan.planschema import Field, PlanSchema
from repro.minidb.schema import Column, TableSchema
from repro.minidb.types import SqlType


class TestTableSchema:
    def test_names_normalized_lowercase(self):
        schema = TableSchema.of(("EPC", SqlType.VARCHAR))
        assert schema.names == ("epc",)
        assert schema.has_column("Epc")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of(("a", SqlType.INTEGER), ("A", SqlType.VARCHAR))

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", SqlType.INTEGER)

    def test_position_and_type(self):
        schema = TableSchema.of(("a", SqlType.INTEGER),
                                ("b", SqlType.VARCHAR))
        assert schema.position_of("b") == 1
        assert schema.type_of("a") is SqlType.INTEGER

    def test_missing_column_names_alternatives(self):
        schema = TableSchema.of(("a", SqlType.INTEGER))
        with pytest.raises(SchemaError, match="available: a"):
            schema.position_of("zz")

    def test_project_preserves_order(self):
        schema = TableSchema.of(("a", SqlType.INTEGER),
                                ("b", SqlType.VARCHAR),
                                ("c", SqlType.DOUBLE))
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_join_concatenates(self):
        left = TableSchema.of(("a", SqlType.INTEGER))
        right = TableSchema.of(("b", SqlType.VARCHAR))
        assert left.join(right).names == ("a", "b")

    def test_join_duplicate_rejected(self):
        left = TableSchema.of(("a", SqlType.INTEGER))
        with pytest.raises(SchemaError):
            left.join(left)

    def test_covers(self):
        small = TableSchema.of(("a", SqlType.INTEGER))
        big = TableSchema.of(("b", SqlType.VARCHAR), ("a", SqlType.INTEGER))
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_checks_types(self):
        left = TableSchema.of(("a", SqlType.INTEGER))
        right = TableSchema.of(("a", SqlType.VARCHAR))
        assert not left.covers(right)

    def test_with_column(self):
        schema = TableSchema.of(("a", SqlType.INTEGER))
        extended = schema.with_column(Column("b", SqlType.VARCHAR))
        assert extended.names == ("a", "b")
        assert schema.names == ("a",)  # original untouched


class TestPlanSchema:
    def _schema(self):
        table = TableSchema.of(("epc", SqlType.VARCHAR),
                               ("rtime", SqlType.TIMESTAMP))
        return PlanSchema.from_table(table, "c", table_name="caser")

    def test_qualified_resolution(self):
        schema = self._schema()
        assert schema.resolve("c", "rtime") == 1

    def test_unqualified_resolution(self):
        assert self._schema().resolve(None, "epc") == 0

    def test_origin_tracked(self):
        schema = self._schema()
        assert schema.fields[0].origin == ("caser", "epc")

    def test_ambiguity_raises(self):
        schema = self._schema().concat(self._schema().requalify("d"))
        with pytest.raises(PlanningError, match="ambiguous"):
            schema.resolve(None, "epc")
        assert schema.resolve("d", "epc") == 2

    def test_missing_raises(self):
        with pytest.raises(PlanningError):
            self._schema().resolve(None, "nope")

    def test_requalify_keeps_origin(self):
        requalified = self._schema().requalify("x")
        assert requalified.fields[0].qualifier == "x"
        assert requalified.fields[0].origin == ("caser", "epc")

    def test_append(self):
        schema = self._schema().append(Field("flag", SqlType.INTEGER))
        assert schema.resolve(None, "flag") == 2

    def test_to_table_schema(self):
        assert self._schema().to_table_schema().names == ("epc", "rtime")
