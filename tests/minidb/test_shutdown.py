"""Database.shutdown(): idempotent, safe on partial construction
(satellite 1)."""

from __future__ import annotations

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.storage.backend import DiskStorage


def test_shutdown_is_idempotent_memory():
    db = Database()
    db.shutdown()
    db.shutdown()


def test_shutdown_is_idempotent_disk(tmp_path):
    db = Database(storage="disk", storage_path=str(tmp_path / "d"))
    db.create_table("t", TableSchema.of(("k", SqlType.INTEGER)))
    db.load("t", [(1,), (2,)])
    db.shutdown()
    db.shutdown()  # second close must not touch the dead pager


def test_context_manager_shuts_down(tmp_path):
    with Database(storage="disk",
                  storage_path=str(tmp_path / "d")) as db:
        db.create_table("t", TableSchema.of(("k", SqlType.INTEGER)))
        db.load("t", [(7,)])
    # Reopening proves the close checkpointed cleanly.
    with Database(storage="disk",
                  storage_path=str(tmp_path / "d")) as reopened:
        assert reopened.execute("select k from t").rows == [(7,)]


def test_failed_init_leaves_shutdown_safe():
    """__exit__/__del__ after a failed __init__ must not raise."""
    with pytest.raises(ValueError):
        Database(storage="floppy")
    # The instance that failed mid-__init__ is gone, but the same
    # guarantee must hold for an instance with *no* attributes at all
    # (the worst partial-construction case).
    bare = Database.__new__(Database)
    bare.shutdown()  # no AttributeError
    bare.__exit__(None, None, None)


def test_disk_storage_close_tolerates_partial_construction(monkeypatch,
                                                           tmp_path):
    """If the pager constructor raises, close() still works."""
    import repro.minidb.storage.backend as backend

    def broken_pager(*args, **kwargs):
        raise RuntimeError("pager construction failed")

    monkeypatch.setattr(backend, "Pager", broken_pager)
    with pytest.raises(RuntimeError):
        DiskStorage(path=str(tmp_path / "d"))
    # A storage object frozen before its pager existed closes cleanly.
    bare = DiskStorage.__new__(DiskStorage)
    bare.pager = None
    bare.wal = None
    bare.catalog = None
    bare.dead = False
    bare.readonly = False
    bare.close()
    bare.checkpoint()
