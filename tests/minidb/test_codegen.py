"""Pins for the query-compilation layer (``REPRO_CODEGEN=1``).

The contract under test: compiled execution is an invisible
optimization. For every query, the rows (values AND order), the
per-operator EXPLAIN ANALYZE counters, and raised errors are
byte-identical to the interpreted vectorized path — across worker
counts and batch sizes, through NULL-heavy data, and for plans that
only partially fuse. The generated source itself is observable through
``explain_codegen`` and registered with ``linecache`` so tracebacks
into kernels resolve to real lines.
"""

import linecache

import pytest

from repro.errors import TypeMismatchError
from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.codegen import (
    CompiledSpineOp,
    clear_cache,
    forced_codegen,
)
from repro.minidb.plan.shard import ExchangeOp
from repro.minidb.vector import forced_batch_size, materialize

SCHEMA = TableSchema.of(("id", SqlType.INTEGER),
                        ("epc", SqlType.VARCHAR),
                        ("rtime", SqlType.TIMESTAMP),
                        ("loc", SqlType.VARCHAR),
                        ("qty", SqlType.INTEGER))

DIM_SCHEMA = TableSchema.of(("loc", SqlType.VARCHAR),
                            ("zone", SqlType.VARCHAR))

CODEGEN_MODES = (False, True)
WORKER_COUNTS = (0, 2)
BATCH_SIZES = (0, 1, 7)

QUERIES = [
    "select id, qty from reads where rtime < 6000 and qty > 10"
    " and loc != 'L0'",
    "select id, qty + 1, qty / 2 from reads where qty >= 0 or rtime < 50",
    "select r.epc, d.zone from reads r, dim d"
    " where r.loc = d.loc and r.rtime < 7000",
    "select r.id, d.zone from reads r left join dim d"
    " on r.loc = d.loc and d.zone != 'Z1' where r.qty > 30",
    "select id from reads where loc in ('L1', 'L2')"
    " and qty not in (5, 7)",
]

FILTER_SQL = QUERIES[0]


def big_rows(n=6000):
    # Deterministic pseudo-data with NULL qty every 7th row and NULL
    # loc every 11th: chunk boundaries land inside NULL runs at batch
    # sizes 1 and 7.
    rows = []
    for i in range(n):
        qty = None if i % 7 == 0 else (i * 13) % 41
        loc = None if i % 11 == 0 else f"L{i % 8}"
        rows.append((i, f"E{i % 100:03d}", (i * 17) % 9973, loc, qty))
    return rows


def make_db(rows=None):
    db = Database()
    db.create_table("reads", SCHEMA)
    db.load("reads", big_rows() if rows is None else rows)
    db.create_table("dim", DIM_SCHEMA)
    db.load("dim", [(f"L{i}", None if i == 3 else f"Z{i % 3}")
                    for i in range(6)])
    return db


def run_with_counters(db, sql):
    """(rows, per-operator counters) — Exchange and CompiledSpine
    wrappers excluded so interpreted and compiled plans line up node
    for node."""
    plan = db.plan(sql)
    rows = materialize(plan)
    counters = [(type(node).__name__, node.actual_rows,
                 node.actual_batches, getattr(node, "input_rows", 0))
                for node in plan.walk()
                if not isinstance(node, (ExchangeOp, CompiledSpineOp))]
    return rows, counters


@pytest.mark.parametrize("sql", QUERIES,
                         ids=["filter", "arith", "join", "leftjoin", "in"])
def test_parity_matrix(sql, monkeypatch):
    """Rows and EXPLAIN ANALYZE row counts are identical across
    codegen × workers × batch size; the full batch counters are
    identical between codegen on and off within each (workers, batch
    size) cell — including batch size 0, where compiled plans fall
    back to the interpreted scalar path (zero batches either way)."""
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    reference_rows = None
    reference_row_counts = None
    reference_counters = {}
    for workers in WORKER_COUNTS:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        for enabled in CODEGEN_MODES:
            db = make_db()
            try:
                for batch_size in BATCH_SIZES:
                    with forced_codegen(enabled), \
                            forced_batch_size(batch_size):
                        rows, counters = run_with_counters(db, sql)
                    key = (workers, enabled, batch_size)
                    row_counts = [entry[:2] for entry in counters]
                    if reference_rows is None:
                        reference_rows = rows
                        reference_row_counts = row_counts
                    else:
                        assert rows == reference_rows, key
                        assert row_counts == reference_row_counts, key
                    cell = (workers, batch_size)
                    if cell not in reference_counters:
                        reference_counters[cell] = counters
                    else:
                        assert counters == reference_counters[cell], key
            finally:
                db.close()


def test_null_ordering_edge_cases():
    """NULL operands in every fused position: comparisons, logical
    connectives, IN lists, join keys, and left-join pads."""
    rows = [(1, "E1", 10, None, None),
            (2, "E2", None, "L1", 0),
            (3, None, 30, "L3", 5),
            (4, "E4", 40, "L9", None),
            (5, "E5", 50, "L1", 41)]
    for sql in [
        "select id from reads where qty > 0 or rtime < 20",
        "select id from reads where qty <= 41 and rtime >= 10",
        "select id, qty / 2 from reads where loc in ('L1', 'L9')",
        "select r.id, d.zone from reads r left join dim d"
        " on r.loc = d.loc where r.id >= 1",
        "select r.id, d.zone from reads r, dim d where r.loc = d.loc",
    ]:
        expected = None
        for enabled in CODEGEN_MODES:
            db = make_db(rows)
            try:
                with forced_codegen(enabled), forced_batch_size(2):
                    got = db.execute(sql).rows
            finally:
                db.close()
            if expected is None:
                expected = got
            else:
                assert got == expected, sql


def test_exception_parity_division_by_zero():
    """A raising operand raises identically under compilation, even on
    the short-circuited side of a conjunction."""
    db = make_db([(1, "E1", 10, "L1", 5)])
    try:
        sql = "select id from reads where rtime < 100 and qty / 0 > 1"
        for enabled in CODEGEN_MODES:
            with forced_codegen(enabled), pytest.raises(TypeMismatchError):
                db.execute(sql)
    finally:
        db.close()


def test_wrapper_present_and_linecache():
    """Fused plans carry a CompiledSpineOp whose kernel compiles under
    a stable virtual filename registered with linecache."""
    db = make_db()
    try:
        with forced_codegen(True):
            plan = db.plan(FILTER_SQL)
        wrappers = [node for node in plan.walk()
                    if isinstance(node, CompiledSpineOp)]
        assert wrappers, "no compiled pipeline planned"
        wrapper = wrappers[0]
        assert wrapper.filename.startswith("<minidb-codegen-")
        assert wrapper.kernel.__code__.co_filename == wrapper.filename
        lines = linecache.getlines(wrapper.filename)
        assert lines and "".join(lines) == wrapper.source_text
        assert "def _fused_kernel" in wrapper.source_text
    finally:
        db.close()


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CODEGEN", raising=False)
    db = make_db()
    try:
        plan = db.plan(FILTER_SQL)
        assert not any(isinstance(node, CompiledSpineOp)
                       for node in plan.walk())
    finally:
        db.close()


def test_explain_codegen():
    db = make_db()
    try:
        with forced_codegen(True):
            text = db.explain_codegen(FILTER_SQL)
        assert "-- pipeline 0:" in text
        assert "def _fused_kernel" in text
        with forced_codegen(False):
            text = db.explain_codegen(FILTER_SQL)
        assert "no compiled pipelines" in text
    finally:
        db.close()


def test_source_dump_hook(tmp_path, monkeypatch):
    """REPRO_CODEGEN_DUMP writes each freshly compiled kernel to disk."""
    monkeypatch.setenv("REPRO_CODEGEN_DUMP", str(tmp_path))
    clear_cache()
    db = make_db()
    try:
        with forced_codegen(True):
            plan = db.plan(FILTER_SQL)
        wrapper = next(node for node in plan.walk()
                       if isinstance(node, CompiledSpineOp))
        stem = wrapper.filename.strip("<>")
        dumped = tmp_path / f"{stem}.py"
        assert dumped.read_text() == wrapper.source_text
    finally:
        db.close()


def test_partial_fusion_falls_back():
    """Plans with unfusable operators (aggregation) still fuse the
    scan→filter spine underneath and agree with the interpreter."""
    sql = ("select loc, count(*) from reads where qty > 5"
           " group by loc order by loc asc")
    expected = None
    for enabled in CODEGEN_MODES:
        db = make_db()
        try:
            with forced_codegen(enabled), forced_batch_size(7):
                got = db.execute(sql).rows
                if enabled:
                    plan = db.plan(sql)
                    assert any(isinstance(node, CompiledSpineOp)
                               for node in plan.walk())
        finally:
            db.close()
        if expected is None:
            expected = got
        else:
            assert got == expected


def test_compiled_plan_survives_append():
    """The prepared-plan cache keeps serving the compiled plan across
    appends (the fingerprint covers the codegen knob, not the data)."""
    db = make_db()
    try:
        with forced_codegen(True):
            _, first = db.execute_with_metrics(FILTER_SQL)
            assert first.fused_pipelines > 0
            db.append("reads", [(10_001, "E001", 123, "L1", 39)])
            result, metrics = db.execute_with_metrics(FILTER_SQL)
        assert metrics.plan_cache_hits == 1
        assert metrics.fused_pipelines > 0
        assert any(row[0] == 10_001 for row in result.rows)
    finally:
        db.close()


def test_codegen_cache_hit_on_replan():
    """Identical plans compile once: the second planning of the same
    query hits the source-keyed kernel cache."""
    clear_cache()
    db = make_db()
    try:
        with forced_codegen(True):
            _, first = db.execute_with_metrics(FILTER_SQL)
            db.plan_cache.clear()
            _, second = db.execute_with_metrics(FILTER_SQL)
        assert first.codegen_cache_misses >= 1
        assert first.compile_ms > 0
        assert second.codegen_cache_hits >= 1
        assert second.codegen_cache_misses == 0
    finally:
        db.close()


def test_fingerprint_keyed_on_codegen_knob():
    """Toggling REPRO_CODEGEN must not serve a stale interpreted plan
    from the prepared-plan cache (or vice versa)."""
    db = make_db()
    try:
        with forced_codegen(False):
            _, off = db.execute_with_metrics(FILTER_SQL)
            assert off.fused_pipelines == 0
        with forced_codegen(True):
            _, on = db.execute_with_metrics(FILTER_SQL)
            assert on.plan_cache_hits == 0
            assert on.fused_pipelines > 0
    finally:
        db.close()
