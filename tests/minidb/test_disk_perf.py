"""Fast-disk-path tests: zone pruning, readahead, group commit,
checkpoint compaction, and the storage stat CLI.

The pruning pins compare a zone-pruned scan against the same scan with
``REPRO_ZONE_PRUNE=0``: rows must be byte-identical and the pruned run
must fault at most half the pages. Measurements use the scalar row path
(``REPRO_BATCH_SIZE=0``) with a small pool, because the batch path's
columnar cache and a large pool would both hide page reads entirely.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.minidb.engine import Database
from repro.minidb.schema import TableSchema
from repro.minidb.storage.__main__ import main as storage_main, stat
from repro.minidb.storage.wal import parse_group_commit
from repro.minidb.storage.zones import (
    heap_zone,
    page_qualifies,
    leaf_zone,
)
from repro.minidb.types import SqlType

SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
    ("loc", SqlType.INTEGER), ("v", SqlType.DOUBLE))

#: id-sorted rows: heap pages get disjoint id ranges, so a range
#: predicate on id disqualifies most pages by zone map alone.
def _rows(count: int, start: int = 0) -> list[tuple]:
    return [(i, f"epc{i % 13}", i % 7, i * 0.5)
            for i in range(start, start + count)]


def _open(path, **kwargs) -> Database:
    kwargs.setdefault("buffer_pages", 8)
    kwargs.setdefault("page_size", 512)
    return Database(storage="disk", storage_path=str(path), **kwargs)


def _measured_scan(path, sql: str, prune: str,
                   monkeypatch) -> tuple[list, int, int]:
    """(rows, pages_read, pages_pruned) for *sql* on a reopened db."""
    monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
    monkeypatch.setenv("REPRO_ZONE_PRUNE", prune)
    with _open(path) as db:
        # Warm the statistics (which scan everything) before measuring,
        # so the measured delta is the target query's own page traffic.
        db.execute("SELECT id FROM reads WHERE id = -1")
        result, metrics = db.execute_with_metrics(sql)
        return result.rows, metrics.pages_read, metrics.pages_pruned


class TestZoneMapUnit:
    def test_heap_zone_bounds_and_nulls(self):
        rows = [(1, "a", None), (5, "c", None), (3, "b", None)]
        zone = heap_zone(rows, 3)
        assert zone == ["h", 3, [[1, 5, 0], ["a", "c", 0], [None, None, 3]]]

    def test_nan_and_surrogates_poison_bounds(self):
        zone = heap_zone([(float("nan"),), (1.0,)], 1)
        assert zone[2][0][:2] == [None, None]  # unprunable, still valid
        assert page_qualifies(zone, [(0, "<", 0.0)])
        zone = heap_zone([("\udc80",), ("a",)], 1)
        assert zone[2][0][:2] == [None, None]

    def test_qualification_ops(self):
        zone = heap_zone([(10, 1.0), (20, 2.0)], 2)
        assert page_qualifies(zone, [(0, "=", 15)])
        assert not page_qualifies(zone, [(0, "=", 25)])
        assert not page_qualifies(zone, [(0, "<", 10)])
        assert page_qualifies(zone, [(0, "<=", 10)])
        assert not page_qualifies(zone, [(0, ">", 20)])
        assert page_qualifies(zone, [(0, ">=", 20)])

    def test_all_null_column_disqualifies_any_comparison(self):
        zone = heap_zone([(None,), (None,)], 1)
        for op in ("=", "<", "<=", ">", ">="):
            assert not page_qualifies(zone, [(0, op, 0)])

    def test_mixed_type_page_is_unprunable(self):
        zone = heap_zone([(1,), ("text",)], 1)
        assert page_qualifies(zone, [(0, "=", 99)])

    def test_leaf_zone(self):
        assert leaf_zone([]) is None
        assert leaf_zone([1, 2, 9]) == ["l", 1, 9]


class TestZonePruning:
    SQL = "SELECT epc, v FROM reads WHERE id >= 900 AND id < 1000"

    def _build(self, path):
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(2000))

    def test_selective_scan_reads_half_the_pages_or_less(
            self, tmp_path, monkeypatch):
        path = tmp_path / "db"
        self._build(path)
        pruned, read_pruned, pages_pruned = _measured_scan(
            path, self.SQL, "1", monkeypatch)
        baseline, read_all, zero = _measured_scan(
            path, self.SQL, "0", monkeypatch)
        assert pruned == baseline  # byte-identical rows
        assert len(pruned) == 100
        assert pages_pruned > 0 and zero == 0
        assert read_all > 0
        assert read_pruned <= read_all // 2, \
            f"pruned scan read {read_pruned}/{read_all} pages"

    def test_pruning_correct_under_append_deltas(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "db"
        self._build(path)
        with _open(path) as db:
            for ordinal in range(4):  # streaming ingest: delta appends
                db.append("reads", _rows(120, 2000 + ordinal * 120))
        sql = "SELECT id FROM reads WHERE id >= 2100 AND id < 2300"
        pruned = _measured_scan(path, sql, "1", monkeypatch)
        baseline = _measured_scan(path, sql, "0", monkeypatch)
        assert pruned[0] == baseline[0]
        assert len(pruned[0]) == 200
        assert pruned[2] > 0

    def test_pruning_correct_under_replace_splices(self, tmp_path,
                                                   monkeypatch):
        path = tmp_path / "db"
        self._build(path)
        with _open(path) as db:
            rows = _rows(2000)
            spliced = rows[:500] + _rows(300, 5000) + rows[1500:]
            db.table("reads").replace_rows(spliced, coerced=False)
        sql = "SELECT id, epc FROM reads WHERE id >= 5000"
        pruned = _measured_scan(path, sql, "1", monkeypatch)
        baseline = _measured_scan(path, sql, "0", monkeypatch)
        assert pruned[0] == baseline[0]
        assert len(pruned[0]) == 300
        assert pruned[2] > 0

    def test_batch_and_scalar_paths_agree(self, tmp_path, monkeypatch):
        path = tmp_path / "db"
        self._build(path)
        monkeypatch.setenv("REPRO_ZONE_PRUNE", "1")
        with _open(path) as db:
            batched = db.explain_analyze(self.SQL)  # vectorized default
        monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
        with _open(path) as db:
            tuple_at_a_time = db.explain_analyze(self.SQL)
        assert batched.text == tuple_at_a_time.text

    def test_explain_analyze_storage_section_is_opt_in(self, tmp_path):
        path = tmp_path / "db"
        self._build(path)
        with _open(path) as db:
            plain = db.explain_analyze(self.SQL)
            assert "Storage:" not in plain.text
            detailed = db.explain_analyze(self.SQL, include_storage=True)
            assert "Storage:" in detailed.text
            assert "pages_pruned=" in detailed.text
            assert "wal_bytes=0" in detailed.text  # read-only query


class TestReadahead:
    def test_sequential_scan_prefetches(self, tmp_path, monkeypatch):
        path = tmp_path / "db"
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(2000))
        monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
        with _open(path) as plain_db:
            plain_db.execute("SELECT id FROM reads WHERE id = -1")
            baseline, plain = plain_db.execute_with_metrics(
                "SELECT COUNT(*) AS n FROM reads")
        with _open(path, readahead=8) as ra_db:
            ra_db.execute("SELECT id FROM reads WHERE id = -1")
            result, metrics = ra_db.execute_with_metrics(
                "SELECT COUNT(*) AS n FROM reads")
        assert result.rows == baseline.rows
        assert metrics.pages_prefetched > 0
        # Prefetch hits replace demand reads one-for-one.
        assert metrics.pages_read < plain.pages_read
        counters = ra_db.storage.counters
        assert counters["prefetch_hits"] > 0

    def test_readahead_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_READAHEAD", "16")
        with _open(tmp_path / "db") as db:
            assert db.storage.pager.readahead == 16
        monkeypatch.setenv("REPRO_READAHEAD", "junk")
        with _open(tmp_path / "db2") as db:
            assert db.storage.pager.readahead == 0


class TestGroupCommit:
    @pytest.mark.parametrize("spec,expected", [
        (None, (0, 0.0)),
        ("", (0, 0.0)),
        ("8", (8, 0.0)),
        (8, (8, 0.0)),
        ("25ms", (0, 0.025)),
        ("junk", (0, 0.0)),
        ("-3", (0, 0.0)),
    ])
    def test_parse_group_commit(self, spec, expected):
        assert parse_group_commit(spec) == expected

    def test_coalesces_fsyncs(self, tmp_path):
        with _open(tmp_path / "db", group_commit="8") as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(10))
            for ordinal in range(32):
                db.append("reads", _rows(5, 100 + ordinal * 5))
            wal = db.storage.wal
            assert wal.group_enabled
            assert wal.commits > 30
            assert wal.syncs < wal.commits // 2
            assert wal.group_syncs > 0

    def test_pending_commits_durable_across_clean_shutdown(self, tmp_path):
        path = tmp_path / "db"
        with _open(path, group_commit="100") as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(10))
            db.append("reads", _rows(5, 100))
        with _open(path) as db:
            assert len(list(db.table("reads").scan())) == 15

    def test_env_knob_configures_wal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GROUP_COMMIT", "4")
        with _open(tmp_path / "db") as db:
            assert db.storage.wal.group_count == 4


class TestCompaction:
    def test_file_shrinks_after_bulk_replace(self, tmp_path):
        path = tmp_path / "db"
        data = str(path / "data.pages")
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(2000))
            db.checkpoint()
            full_size = os.path.getsize(data)
            db.table("reads").replace_rows(_rows(100), coerced=False)
            db.checkpoint()  # retires the old pages, then frees them
            db.checkpoint()  # relocates tail pages and truncates
            shrunk = os.path.getsize(data)
            assert shrunk < full_size // 2, \
                f"data.pages {full_size} -> {shrunk}"
            assert db.storage.counters["compactions"] >= 1
            assert db.storage.counters["pages_moved"] >= 1
            assert list(db.table("reads").scan()) == _rows(100)
        with _open(path) as db:  # relocation survives reopen
            assert list(db.table("reads").scan()) == _rows(100)

    def test_compaction_remaps_indexes(self, tmp_path):
        path = tmp_path / "db"
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(1500))
            db.create_index("reads", "epc")
            db.checkpoint()
            keep = [row for row in _rows(1500) if row[0] % 5 == 0]
            db.table("reads").replace_rows(keep, coerced=False)
            db.checkpoint()
            db.checkpoint()
            index = db.table("reads").index_on("epc")
            index.tree.check_invariants()
            result = db.execute(
                "SELECT COUNT(*) AS n FROM reads WHERE epc = 'epc5'")
            expected = sum(1 for row in keep if row[1] == "epc5")
            assert result.rows == [(expected,)]
        with _open(path) as db:
            db.table("reads").index_on("epc").tree.check_invariants()
            assert list(db.table("reads").scan()) == keep

    @given(st.lists(st.tuples(st.sampled_from(["append", "replace",
                                               "checkpoint"]),
                              st.integers(1, 120)),
                    min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_compaction_preserves_rows_and_invariants(
            self, tmp_path_factory, ops):
        path = tmp_path_factory.mktemp("compact") / "db"
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.create_index("reads", "epc")
            model: list[tuple] = []
            serial = 0
            for op, size in ops:
                if op == "append":
                    batch = _rows(size, serial)
                    serial += size
                    db.append("reads", batch)
                    model.extend(batch)
                elif op == "replace":
                    model = model[::2] + _rows(size % 30, serial)
                    serial += size % 30
                    db.table("reads").replace_rows(model, coerced=False)
                else:
                    db.checkpoint()
            db.checkpoint()
            db.checkpoint()  # second pass moves freed tails
            assert list(db.table("reads").scan()) == model
            db.table("reads").index_on("epc").tree.check_invariants()
            storage = db.storage
            # After two quiesced checkpoints the file has no free tail.
            data_pages = os.path.getsize(
                os.path.join(storage.path, "data.pages")) \
                // storage.page_size
            assert data_pages == storage.next_page_id
            assert storage.next_page_id - 1 not in set(storage._free_now)
        with _open(path) as db:
            assert list(db.table("reads").scan()) == model


class TestStatCli:
    def test_stat_reports_pages_and_zones(self, tmp_path, capsys):
        path = tmp_path / "db"
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(500))
            db.create_index("reads", "epc")
        report = stat(str(path))
        assert "checkpoint epoch:" in report
        assert "table reads: 500 rows" in report
        assert "zone maps:" in report
        assert "free list:" in report
        assert storage_main(["stat", str(path)]) == 0
        assert "table reads" in capsys.readouterr().out

    def test_stat_on_fresh_directory(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert storage_main(["stat", str(tmp_path / "empty")]) == 0
        assert "no MANIFEST.json" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path, capsys):
        assert storage_main([]) == 2
        assert storage_main(["stat", str(tmp_path / "nope")]) == 2


class TestContextManager:
    def test_with_block_shuts_down(self, tmp_path):
        path = tmp_path / "db"
        with _open(path) as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(50))
            storage = db.storage
        assert storage.pager.closed  # shutdown ran: checkpointed + closed
        assert os.path.getsize(str(path / "wal.log")) == 0
        with _open(path) as db:
            assert len(list(db.table("reads").scan())) == 50

    def test_memory_mode_context_manager(self):
        with Database() as db:
            db.create_table("reads", SCHEMA)
            db.load("reads", _rows(5))
            assert db.execute("SELECT COUNT(*) AS n FROM reads").rows == \
                [(5,)]
