"""Vectorized execution tests: RowBatch mechanics, batch-compiled
expression parity with the scalar evaluator, NULL-ordering pins for the
decorated-key sort, scalar/batch plan equivalence (including an
operator-by-operator EXPLAIN ANALYZE diff), and the batch metrics.
"""

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.sqlparse import parse_expression
from repro.minidb.vector import (
    DEFAULT_BATCH_SIZE,
    RowBatch,
    batch_execution_enabled,
    configured_batch_size,
    forced_batch_size,
)


class TestRowBatch:
    def test_from_rows_round_trip(self):
        rows = [(1, "a"), (2, "b"), (3, None)]
        batch = RowBatch.from_rows(rows, 2)
        assert batch.length == 3
        assert len(batch) == 3
        assert batch.columns == [[1, 2, 3], ["a", "b", None]]
        assert batch.rows() == rows

    def test_rows_lazy_transpose_is_cached(self):
        batch = RowBatch([[1, 2], ["x", "y"]], 2)
        first = batch.rows()
        assert first == [(1, "x"), (2, "y")]
        assert batch.rows() is first

    def test_empty_and_zero_width(self):
        empty = RowBatch.from_rows([], 3)
        assert empty.columns == [[], [], []]
        assert empty.rows() == []
        widthless = RowBatch([], 4)
        assert widthless.rows() == [(), (), (), ()]

    def test_take_and_head(self):
        batch = RowBatch.from_rows([(1, "a"), (2, "b"), (3, "c")], 2)
        taken = batch.take([2, 0])
        assert taken.rows() == [(3, "c"), (1, "a")]
        assert batch.head(2).rows() == [(1, "a"), (2, "b")]
        # source columns untouched
        assert batch.columns == [[1, 2, 3], ["a", "b", "c"]]

    def test_configured_size_knob(self):
        with forced_batch_size(0):
            assert configured_batch_size() == 0
            assert not batch_execution_enabled()
        with forced_batch_size(17):
            assert configured_batch_size() == 17
            assert batch_execution_enabled()
        import os
        saved = os.environ.get("REPRO_BATCH_SIZE")
        os.environ["REPRO_BATCH_SIZE"] = "junk"
        try:
            assert configured_batch_size() == DEFAULT_BATCH_SIZE
        finally:
            if saved is None:
                os.environ.pop("REPRO_BATCH_SIZE", None)
            else:
                os.environ["REPRO_BATCH_SIZE"] = saved


SCHEMA = TableSchema.of(("a", SqlType.INTEGER), ("b", SqlType.INTEGER),
                        ("s", SqlType.VARCHAR))

ROWS = [(1, 10, "x"), (2, None, "y"), (None, 30, "x"), (4, 40, None),
        (5, 5, "z"), (0, 0, "x")]


def _resolver():
    positions = {"a": 0, "b": 1, "s": 2}

    def resolve(qualifier, name):
        return positions[name]

    return resolve


class TestBatchExpressionParity:
    """bind_batch must agree with bind, value for value, NULLs included."""

    EXPRESSIONS = [
        "a", "42", "a + b", "a - 1", "b * 2", "a / 2",
        "a = b", "a != b", "a < b", "a <= 4", "a > b", "b >= 30",
        "a is null", "b is not null", "-a", "not (a < b)",
        "a < b and b < 40", "a is null or b is null",
        "a in (1, 4, 9)", "s in ('x', 'z')", "a not in (2, 5)",
        "a in (1, null)",
        "case when a is null then -1 else a end",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_matches_scalar_bind(self, text):
        expr = parse_expression(text)
        resolver = _resolver()
        bound = expr.bind(resolver)
        batch_bound = expr.bind_batch(resolver)
        batch = RowBatch.from_rows(ROWS, 3)
        assert batch_bound(batch) == [bound(row) for row in ROWS]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_fallback_kernel_matches(self, text, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_FALLBACK", "1")
        expr = parse_expression(text)
        resolver = _resolver()
        bound = expr.bind(resolver)
        batch_bound = expr.bind_batch(resolver)
        batch = RowBatch.from_rows(ROWS, 3)
        assert batch_bound(batch) == [bound(row) for row in ROWS]

    def test_kleene_three_valued_corners(self):
        resolver = _resolver()
        batch = RowBatch.from_rows(
            [(None, 1, "q"), (None, None, "q"), (0, None, "q")], 3)
        # NULL AND TRUE = NULL; FALSE AND NULL = FALSE.
        expr = parse_expression("a < 0 and b > 0")
        values = expr.bind_batch(resolver)(batch)
        assert values == [None, None, False]
        expr = parse_expression("a is null or b > 0")
        values = expr.bind_batch(resolver)(batch)
        assert values == [True, True, None]


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", TableSchema.of(
        ("k", SqlType.INTEGER), ("v", SqlType.INTEGER),
        ("tag", SqlType.VARCHAR)))
    database.load("t", [
        (1, 10, "a"), (2, None, "b"), (3, 30, "a"), (None, 40, "c"),
        (5, 50, None), (6, 10, "b"), (7, None, "a"), (8, 80, "c"),
        (2, 15, "a"), (3, 30, "b"), (None, None, "a"), (9, 5, "b"),
    ])
    database.create_table("d", TableSchema.of(
        ("tag", SqlType.VARCHAR), ("label", SqlType.VARCHAR)))
    database.load("d", [("a", "alpha"), ("b", "beta"), ("b", "beta2")])
    return database


EQUIVALENCE_QUERIES = [
    "select k, v from t where v > 10 and k < 8",
    "select k + v from t",
    "select t.k, d.label from t, d where t.tag = d.tag",
    "select t.k, d.label from t left join d on t.tag = d.tag",
    "select tag, count(*), sum(v), min(v), max(v), avg(v) "
    "from t group by tag",
    "select count(distinct tag) from t",
    "select distinct tag from t",
    "select k from t where tag in (select tag from d)",
    "select k from t where tag not in (select tag from d)",
    "select k, v from t order by v desc, k",
    "select k from t order by k limit 4",
    "select k from t where v > 0 union all select k from t where k > 5",
    "select k, v, sum(v) over (partition by tag order by k "
    "rows between 1 preceding and current row) from t",
    "select k, row_number() over (partition by tag order by k) from t",
    "select k, avg(v) over (order by k range between 2 preceding "
    "and current row) from t where k is not null",
]


class TestScalarBatchEquivalence:
    """Identical output rows, in identical order, at every batch size."""

    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_all_batch_sizes_agree(self, db, sql):
        results = {}
        for size in (0, 1, 3, 4096):
            with forced_batch_size(size):
                db.plan_cache.clear()
                results[size] = db.execute(sql).rows
        scalar = results.pop(0)
        for size, rows in results.items():
            assert rows == scalar, f"batch size {size} diverged"

    def test_explained_plan_diff_rows_match(self, db):
        """Satellite: the same logical plan drained through rows() and
        batches() reports identical per-operator actual row counts."""
        sql = ("select t.k, d.label, sum(t.v) over (partition by t.tag "
               "order by t.k) from t, d where t.tag = d.tag and t.v > 5 "
               "order by t.k")
        with forced_batch_size(0):
            db.plan_cache.clear()
            scalar = db.explain_analyze(sql)
        with forced_batch_size(64):
            db.plan_cache.clear()
            batch = db.explain_analyze(sql)
        scalar_counts = [(node.label(), node.actual_rows)
                         for node in scalar.plan.walk()]
        batch_counts = [(node.label(), node.actual_rows)
                        for node in batch.plan.walk()]
        assert scalar_counts == batch_counts
        assert scalar.text == batch.text  # full EXPLAIN ANALYZE renders


class TestSortNullOrdering:
    """Pin the sort contract the decorated-key rewrite must preserve:
    NULLs first ascending, NULLs last descending, stable ties."""

    @pytest.mark.parametrize("size", [0, 3])
    def test_nulls_first_ascending(self, db, size):
        with forced_batch_size(size):
            db.plan_cache.clear()
            values = [row[0] for row in
                      db.execute("select v from t order by v").rows]
        assert values == [None, None, None, 5, 10, 10, 15, 30, 30, 40,
                          50, 80]

    @pytest.mark.parametrize("size", [0, 3])
    def test_nulls_last_descending(self, db, size):
        with forced_batch_size(size):
            db.plan_cache.clear()
            values = [row[0] for row in
                      db.execute("select v from t order by v desc").rows]
        assert values == [80, 50, 40, 30, 30, 15, 10, 10, 5, None, None,
                          None]

    @pytest.mark.parametrize("size", [0, 3])
    def test_multi_key_null_placement(self, db, size):
        with forced_batch_size(size):
            db.plan_cache.clear()
            rows = db.execute(
                "select tag, v from t order by tag, v desc").rows
        # tag ascending: NULL tag first; within each tag v descending
        # with NULL v last.
        assert rows[0][0] is None
        a_rows = [v for tag, v in rows if tag == "a"]
        assert a_rows == [30, 15, 10, None, None]

    @pytest.mark.parametrize("size", [0, 3])
    def test_stable_on_ties(self, db, size):
        with forced_batch_size(size):
            db.plan_cache.clear()
            rows = db.execute("select k, v from t where v = 30").rows
            ordered = db.execute(
                "select k, v from t where v = 30 order by v").rows
        assert ordered == rows  # ties keep input order


class TestBatchMetrics:
    def test_batches_and_selection_density(self, db):
        with forced_batch_size(4):
            db.plan_cache.clear()
            _, metrics = db.execute_with_metrics(
                "select k from t where v > 10")
        assert metrics.batches > 0
        assert metrics.filter_input_rows == 12
        assert metrics.filter_output_rows == 6
        assert metrics.selection_density == pytest.approx(6 / 12)
        assert any(label.startswith("SeqScan")
                   for label, _ in metrics.operator_rows)

    def test_scalar_mode_reports_zero_batches(self, db):
        with forced_batch_size(0):
            db.plan_cache.clear()
            _, metrics = db.execute_with_metrics(
                "select k from t where v > 10")
        assert metrics.batches == 0
        assert metrics.selection_density is None

    def test_prepared_plan_reuse_resets_batch_counters(self, db):
        with forced_batch_size(4):
            db.plan_cache.clear()
            sql = "select k from t where v > 10"
            _, first = db.execute_with_metrics(sql)
            _, second = db.execute_with_metrics(sql)
        assert second.plan_cache_hits == 1
        assert second.batches == first.batches
        assert second.filter_input_rows == first.filter_input_rows
