"""Table storage and catalog tests."""

import pytest

from repro.errors import CatalogError, SchemaError, TypeMismatchError
from repro.minidb.catalog import Catalog
from repro.minidb.schema import TableSchema
from repro.minidb.table import Table
from repro.minidb.types import SqlType

SCHEMA = TableSchema.of(("epc", SqlType.VARCHAR),
                        ("rtime", SqlType.TIMESTAMP))


class TestTable:
    def test_insert_positional_and_mapping(self):
        table = Table("r", SCHEMA)
        table.insert(("e1", 10))
        table.insert({"rtime": 20, "epc": "e2"})
        assert table.rows == [("e1", 10), ("e2", 20)]

    def test_mapping_missing_column_becomes_null(self):
        table = Table("r", SCHEMA)
        table.insert({"epc": "e1"})
        assert table.rows == [("e1", None)]

    def test_arity_checked(self):
        table = Table("r", SCHEMA)
        with pytest.raises(SchemaError):
            table.insert(("only-one",))

    def test_type_checked(self):
        table = Table("r", SCHEMA)
        with pytest.raises(TypeMismatchError):
            table.insert((123, 10))

    def test_bulk_load_returns_count(self):
        table = Table("r", SCHEMA)
        assert table.bulk_load([("e1", 1), ("e2", 2)]) == 2
        assert len(table) == 2

    def test_bulk_load_rebuilds_indexes(self):
        table = Table("r", SCHEMA)
        index = table.create_index("rtime")
        table.bulk_load([("e1", 5), ("e2", 1)])
        assert len(index) == 2
        assert index.min_key() == 1

    def test_insert_maintains_index(self):
        table = Table("r", SCHEMA)
        table.create_index("rtime")
        table.insert(("e1", 7))
        table.insert(("e2", 3))
        index = table.index_on("rtime")
        from repro.minidb.index import IndexRange
        assert list(index.scan(IndexRange())) == [1, 0]

    def test_duplicate_index_rejected(self):
        table = Table("r", SCHEMA)
        table.create_index("rtime")
        with pytest.raises(CatalogError):
            table.create_index("rtime")

    def test_index_on_unknown_column(self):
        table = Table("r", SCHEMA)
        with pytest.raises(SchemaError):
            table.create_index("missing")

    def test_index_on_returns_none_when_absent(self):
        assert Table("r", SCHEMA).index_on("rtime") is None

    def test_column_values(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1), ("e2", 2)])
        assert list(table.column_values("rtime")) == [1, 2]


class TestCatalog:
    def test_create_and_fetch(self):
        catalog = Catalog()
        catalog.create_table("T1", SCHEMA)
        assert catalog.table("t1").name == "t1"
        assert "T1" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_table("T", SCHEMA)

    def test_missing_table_lists_known(self):
        catalog = Catalog()
        catalog.create_table("known", SCHEMA)
        with pytest.raises(CatalogError, match="known"):
            catalog.table("absent")

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", SCHEMA)
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.create_table("zz", SCHEMA)
        catalog.create_table("aa", SCHEMA)
        assert catalog.table_names() == ["aa", "zz"]


class TestReplaceRows:
    def test_swaps_rows_and_returns_count(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1), ("e2", 2), ("e3", 3)])
        assert table.replace_rows([("e9", 9)]) == 1
        assert table.rows == [("e9", 9)]

    def test_bumps_version_once(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1)])
        before = table.version
        table.replace_rows([("e2", 2), ("e3", 3)])
        assert table.version == before + 1

    def test_rebuilds_indexes(self):
        table = Table("r", SCHEMA)
        table.create_index("rtime")
        table.bulk_load([("e1", 7), ("e2", 3)])
        table.replace_rows([("e3", 5), ("e4", 1)])
        from repro.minidb.index import IndexRange
        index = table.index_on("rtime")
        assert list(index.scan(IndexRange())) == [1, 0]

    def test_coerces_and_validates(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1)])
        with pytest.raises(SchemaError):
            table.replace_rows([("only-one",)])
        # The failed swap must leave the old contents intact.
        assert table.rows == [("e1", 1)]


class TestColumnarCache:
    def test_cache_reused_while_unchanged(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1), ("e2", 2)])
        first = table.columnar()
        assert table.columnar() is first
        assert first == [["e1", "e2"], [1, 2]]

    def test_insert_extends_lazily(self):
        # Appends no longer evict: the cached transpose is kept and the
        # appended tail is transposed on the next columnar() call.
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1)])
        first = table.columnar()
        table.insert(("e2", 2))
        assert table.columnar() is first  # same lists, extended in place
        assert first == [["e1", "e2"], [1, 2]]

    def test_bulk_load_extends_and_replace_evicts(self):
        table = Table("r", SCHEMA)
        table.bulk_load([("e1", 1)])
        first = table.columnar()
        table.bulk_load([("e2", 2)])
        assert table.columnar() is first
        assert first == [["e1", "e2"], [1, 2]]
        table.replace_rows([("e3", 3)])
        assert table._columns is None  # full rewrite still evicts eagerly
        assert table.columnar() == [["e3"], [3]]
