"""Statistics and selectivity-estimation tests."""

import pytest

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.optimizer.cardinality import (
    DEFAULT_SELECTIVITY,
    SelectivityEstimator,
)
from repro.minidb.optimizer.stats import analyze_table
from repro.minidb.plan.planschema import PlanSchema
from repro.minidb.sqlparse import parse_expression


@pytest.fixture
def db():
    database = Database()
    database.create_table("t", TableSchema.of(
        ("k", SqlType.INTEGER), ("g", SqlType.VARCHAR),
        ("ts", SqlType.TIMESTAMP)))
    rows = []
    for i in range(200):
        rows.append((i, f"g{i % 10}", None if i % 20 == 0 else i * 5))
    database.load("t", rows)
    return database


def schema_for(db):
    return PlanSchema.from_table(db.table("t").schema, "t",
                                 table_name="t")


class TestTableStats:
    def test_row_count_and_ndv(self, db):
        stats = db.stats.get("t")
        assert stats.row_count == 200
        assert stats.column("g").ndv == 10
        assert stats.column("k").ndv == 200

    def test_null_count(self, db):
        assert db.stats.get("t").column("ts").null_count == 10

    def test_min_max(self, db):
        column = db.stats.get("t").column("k")
        assert column.min_value == 0
        assert column.max_value == 199

    def test_histogram_range_fraction(self, db):
        column = db.stats.get("t").column("k")
        assert column.range_fraction(0, 99) == pytest.approx(0.5, abs=0.1)
        assert column.range_fraction(None, 19) \
            == pytest.approx(0.1, abs=0.05)
        assert column.range_fraction(500, 600) <= 0.05

    def test_empty_table(self):
        database = Database()
        database.create_table("e", TableSchema.of(("x", SqlType.INTEGER)))
        stats = analyze_table(database.table("e"))
        assert stats.row_count == 0
        assert stats.column("x").ndv == 0

    def test_span_fractions_for_clustered_key(self, db):
        # g groups are spread over the whole k range: span ~ 1.
        stats = db.stats.get("t")
        span = stats.span_fraction("g", "k")
        assert span is not None and span > 0.9

    def test_span_fraction_for_clustered_sequences(self):
        database = Database()
        database.create_table("s", TableSchema.of(
            ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP)))
        rows = []
        # 20 sequences, each spanning 10 ticks of a 2000-tick window.
        for seq in range(20):
            base = seq * 100
            rows.extend((f"e{seq}", base + offset) for offset in range(10))
        database.load("s", rows)
        span = database.stats.get("s").span_fraction("epc", "rtime")
        assert span == pytest.approx(9 / 1909, rel=0.2)


class TestSelectivity:
    def estimator(self, db):
        return SelectivityEstimator(db.stats)

    def sel(self, db, text):
        return self.estimator(db).selectivity(parse_expression(text),
                                              schema_for(db))

    def test_equality_uses_ndv(self, db):
        assert self.sel(db, "g = 'g3'") == pytest.approx(0.1, abs=0.02)

    def test_range_uses_histogram(self, db):
        assert self.sel(db, "k < 50") == pytest.approx(0.25, abs=0.08)

    def test_conjunction_multiplies(self, db):
        single = self.sel(db, "g = 'g3'")
        double = self.sel(db, "g = 'g3' and k < 50")
        assert double < single

    def test_disjunction_adds(self, db):
        either = self.sel(db, "g = 'g3' or g = 'g4'")
        assert either == pytest.approx(0.19, abs=0.03)

    def test_negation(self, db):
        assert self.sel(db, "not g = 'g3'") \
            == pytest.approx(0.9, abs=0.02)

    def test_in_list(self, db):
        assert self.sel(db, "g in ('g1', 'g2', 'g3')") \
            == pytest.approx(0.3, abs=0.05)

    def test_is_null_uses_null_fraction(self, db):
        assert self.sel(db, "ts is null") == pytest.approx(0.05, abs=0.01)
        assert self.sel(db, "ts is not null") \
            == pytest.approx(0.95, abs=0.01)

    def test_unknown_shape_defaults(self, db):
        assert self.sel(db, "k * k > 10") == DEFAULT_SELECTIVITY

    def test_literal_arithmetic_folded(self, db):
        narrow = self.sel(db, "k < 10 + 10")
        assert narrow == pytest.approx(0.1, abs=0.05)

    def test_result_clamped_to_unit_interval(self, db):
        assert 0.0 < self.sel(db, "k < -1000") <= 1.0
        assert self.sel(db, "k < 100000") == 1.0
