"""Unit tests for the logical pushdown pass (optimizer/rules.py)."""

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.expressions import ColumnRef, SortSpec, WindowFunction, lit
from repro.minidb.optimizer.rules import push_down_filters
from repro.minidb.plan.builder import build_plan
from repro.minidb.plan.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    LogicalWindow,
)
from repro.minidb.sqlparse import parse_expression, parse_select


def db():
    database = Database()
    database.create_table("t", TableSchema.of(
        ("k", SqlType.INTEGER), ("g", SqlType.VARCHAR),
        ("v", SqlType.INTEGER)))
    database.create_table("u", TableSchema.of(
        ("k", SqlType.INTEGER), ("w", SqlType.INTEGER)))
    return database


def plan_of(sql, database):
    return push_down_filters(build_plan(parse_select(sql),
                                        database.catalog))


def filters_in(plan):
    return [node for node in plan.walk() if isinstance(node, LogicalFilter)]


class TestJoinPushdown:
    def test_side_local_conjuncts_sink(self):
        database = db()
        plan = plan_of(
            "select * from t, u where t.k = u.k and t.v > 1 and u.w < 5",
            database)
        join = next(n for n in plan.walk() if isinstance(n, LogicalJoin))
        assert join.condition is not None
        assert "t.k = u.k" in join.condition.to_sql().replace("(", "") \
            .replace(")", "")
        left_filters = filters_in(join.left)
        right_filters = filters_in(join.right)
        assert any("v" in f.predicate.to_sql() for f in left_filters)
        assert any("w" in f.predicate.to_sql() for f in right_filters)

    def test_left_join_keeps_outer_semantics(self):
        database = db()
        plan = plan_of(
            "select * from t left join u on t.k = u.k where u.w is null",
            database)
        join = next(n for n in plan.walk() if isinstance(n, LogicalJoin))
        # The IS NULL test must stay above the left join.
        assert not filters_in(join.right)
        top_filters = [f for f in filters_in(plan)
                       if "w" in f.predicate.to_sql()]
        assert top_filters

    def test_left_join_pushes_left_side_conjuncts(self):
        database = db()
        plan = plan_of(
            "select * from t left join u on t.k = u.k where t.v > 0",
            database)
        join = next(n for n in plan.walk() if isinstance(n, LogicalJoin))
        assert any("v" in f.predicate.to_sql()
                   for f in filters_in(join.left))


class TestWindowBarrier:
    def _window_plan(self, database, predicate):
        scan = LogicalScan(database.table("t"))
        call = WindowFunction("sum", ColumnRef("v"),
                              (ColumnRef("g"),),
                              (SortSpec(ColumnRef("k")),), None)
        window = LogicalWindow(scan, [(call, "s")])
        return push_down_filters(
            LogicalFilter(window, parse_expression(predicate)))

    def test_partition_key_conjunct_sinks(self):
        plan = self._window_plan(db(), "g = 'a'")
        window = next(n for n in plan.walk()
                      if isinstance(n, LogicalWindow))
        assert isinstance(window.child, LogicalFilter)

    def test_order_key_conjunct_blocked(self):
        plan = self._window_plan(db(), "k < 5")
        assert isinstance(plan, LogicalFilter)
        window = plan.child
        assert isinstance(window, LogicalWindow)
        assert isinstance(window.child, LogicalScan)

    def test_mixed_conjunct_blocked(self):
        plan = self._window_plan(db(), "g = 'a' and v > 0")
        # v is neither a partition key: whole conjunct g='a' sinks,
        # v > 0 stays above.
        window = next(n for n in plan.walk()
                      if isinstance(n, LogicalWindow))
        assert isinstance(window.child, LogicalFilter)
        assert "g" in window.child.predicate.to_sql()
        assert isinstance(plan, LogicalFilter)
        assert "v" in plan.predicate.to_sql()

    def test_window_output_conjunct_blocked(self):
        database = db()
        scan = LogicalScan(database.table("t"))
        call = WindowFunction("sum", ColumnRef("v"), (ColumnRef("g"),),
                              (SortSpec(ColumnRef("k")),), None)
        window = LogicalWindow(scan, [(call, "s")])
        plan = push_down_filters(
            LogicalFilter(window, parse_expression("s > 3")))
        assert isinstance(plan, LogicalFilter)


class TestOtherBarriers:
    def test_limit_blocks_pushdown(self):
        database = db()
        scan = LogicalScan(database.table("t"))
        limited = LogicalLimit(scan, 3)
        plan = push_down_filters(
            LogicalFilter(limited, parse_expression("v > 0")))
        assert isinstance(plan, LogicalFilter)
        assert isinstance(plan.child, LogicalLimit)

    def test_sort_is_transparent(self):
        database = db()
        scan = LogicalScan(database.table("t"))
        sorted_plan = LogicalSort(scan, [SortSpec(ColumnRef("k"))])
        plan = push_down_filters(
            LogicalFilter(sorted_plan, parse_expression("v > 0")))
        assert isinstance(plan, LogicalSort)
        assert isinstance(plan.child, LogicalFilter)

    def test_union_pushes_into_both_branches(self):
        database = db()
        plan = plan_of(
            "select k from (select k from t union all select k from u) z "
            "where k > 2", database)
        union = next(n for n in plan.walk() if isinstance(n, LogicalUnion))
        assert filters_in(union.left)
        assert filters_in(union.right)

    def test_adjacent_filters_merge(self):
        database = db()
        scan = LogicalScan(database.table("t"))
        stacked = LogicalFilter(LogicalFilter(scan,
                                              parse_expression("v > 0")),
                                parse_expression("k < 5"))
        plan = push_down_filters(stacked)
        assert isinstance(plan, LogicalFilter)
        assert isinstance(plan.child, LogicalScan)
        text = plan.predicate.to_sql()
        assert "v" in text and "k" in text

    def test_projection_substitution(self):
        database = db()
        plan = plan_of(
            "select z.doubled from (select v * 2 as doubled from t) z "
            "where z.doubled > 4", database)
        pushed = [f for f in filters_in(plan)
                  if isinstance(f.child, LogicalScan)]
        assert pushed
        assert "v * 2" in pushed[0].predicate.to_sql().replace("(", "") \
            .replace(")", "")

    def test_trivial_true_is_preserved(self):
        database = db()
        scan = LogicalScan(database.table("t"))
        plan = push_down_filters(LogicalFilter(scan, lit(True)))
        assert isinstance(plan, LogicalFilter)
