"""MVCC snapshots: isolation, detach, refcounts, plan reuse.

The core contract (ISSUE §tentpole, satellite 3): a reader that pinned
a snapshot sees *exactly* its epoch while ``append()`` lands twice
underneath it — rows AND EXPLAIN ANALYZE output byte-identical to a
frozen replica of the pinned state — across storage={memory,disk} ×
workers={0,2}.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.errors import SnapshotError
from repro.fuzz.oracle import forced_parallel_windows
from repro.minidb import Database, SqlType, TableSchema

READS = TableSchema.of(
    ("epc", SqlType.VARCHAR),
    ("rtime", SqlType.TIMESTAMP),
    ("reader", SqlType.VARCHAR),
    ("biz_loc", SqlType.VARCHAR),
    ("biz_step", SqlType.VARCHAR),
)

#: One aggregate over a sequential scan, one index range with an order:
#: together they cover both base-scan operators the snapshot arms.
QUERIES = (
    "select biz_loc, count(*) as n from r "
    "group by biz_loc order by biz_loc",
    "select epc, rtime, biz_loc from r "
    "where rtime <= 260 order by rtime, epc",
)


def _rows(count: int, start: int = 0) -> list[tuple]:
    return [(f"e{i % 7}", 10 * i, f"rd{i % 3}", f"l{i % 5}", "step")
            for i in range(start, start + count)]


def _build(storage: str, rows: list[tuple]) -> Database:
    db = Database(storage=storage)
    db.create_table("r", READS)
    db.load("r", rows)
    db.create_index("r", "rtime")
    db.create_index("r", "epc")
    return db


@pytest.mark.parametrize("storage", ["memory", "disk"])
@pytest.mark.parametrize("workers", [0, 2])
def test_snapshot_pins_epoch_under_double_append(storage, workers):
    """Rows and EXPLAIN ANALYZE match a frozen replica, twice over."""
    parallel = (forced_parallel_windows(workers=2, threshold=1)
                if workers else contextlib.nullcontext())
    with parallel:
        live = _build(storage, _rows(40))
        frozen = _build(storage, _rows(40))  # replica of the pinned epoch
        try:
            with live.snapshot() as snapshot:
                before = [snapshot.execute(sql).rows for sql in QUERIES]
                live.append("r", _rows(12, start=40))
                mid = [snapshot.execute(sql).rows for sql in QUERIES]
                live.append("r", _rows(12, start=52))
                after = [snapshot.execute(sql).rows for sql in QUERIES]
                expected = [frozen.execute(sql).rows for sql in QUERIES]
                assert before == mid == after == expected
                for sql in QUERIES:
                    assert (snapshot.explain_analyze(sql)
                            == frozen.explain_analyze(sql).text)
            # The live database sees every appended row.
            total = live.execute("select count(*) as n from r").scalar()
            assert total == 64
        finally:
            live.shutdown()
            frozen.shutdown()


@pytest.mark.parametrize("storage", ["memory", "disk"])
def test_snapshot_counters_match_frozen_replica(storage):
    """EXPLAIN ANALYZE counters, not just rows, pin the epoch."""
    live = _build(storage, _rows(30))
    frozen = _build(storage, _rows(30))
    try:
        with live.snapshot() as snapshot:
            live.append("r", _rows(100, start=30))
            for sql in QUERIES:
                _, snap_metrics = snapshot.execute_with_metrics(sql)
                _, base_metrics = frozen.execute_with_metrics(sql)
                assert snap_metrics.rows_emitted == base_metrics.rows_emitted
                assert snap_metrics.operator_rows == base_metrics.operator_rows
                assert snap_metrics.batches == base_metrics.batches
    finally:
        live.shutdown()
        frozen.shutdown()


def test_snapshot_survives_replace_rows():
    """A splice detaches pinned versions onto frozen copies."""
    db = _build("memory", _rows(20))
    with db.snapshot() as snapshot:
        expected = snapshot.execute(QUERIES[1]).rows
        db.table("r").replace_rows(_rows(5, start=100))
        db.analyze("r")
        assert snapshot.execute(QUERIES[1]).rows == expected
        # The live table really did change underneath.
        live_count = db.execute("select count(*) as n from r").scalar()
        assert live_count == 5
        assert snapshot.row_count("r") == 20


def test_snapshot_survives_drop_table():
    """DROP TABLE detaches; an already-planned query keeps answering."""
    db = _build("memory", _rows(20))
    with db.snapshot() as snapshot:
        expected = snapshot.execute(QUERIES[0]).rows  # plan now cached
        db.drop_table("r")
        assert snapshot.execute(QUERIES[0]).rows == expected


def test_snapshot_refcounts_share_and_drain():
    db = _build("memory", _rows(10))
    table = db.table("r")
    first = db.snapshot()
    second = db.snapshot()  # same epoch -> shares the pinned version
    assert first.versions["r"] is second.versions["r"]
    first.release()
    assert table.pinned_versions()
    second.release()
    assert not table.pinned_versions()
    # release is idempotent.
    second.release()


def test_snapshot_rejects_tables_created_after_pin():
    db = _build("memory", _rows(10))
    with db.snapshot() as snapshot:
        db.create_table("late", TableSchema.of(("k", SqlType.INTEGER)))
        with pytest.raises(SnapshotError):
            snapshot.row_count("late")
        with pytest.raises(SnapshotError):
            snapshot.execute("select k from late")


def test_snapshot_released_refuses_queries():
    db = _build("memory", _rows(10))
    snapshot = db.snapshot()
    snapshot.release()
    with pytest.raises(SnapshotError):
        snapshot.execute(QUERIES[0])


def test_session_plan_cache_reuses_across_snapshots():
    """One session cache, many snapshots: replans hit zero (ISSUE:
    per-session prepared-plan reuse keyed on plan-cache fingerprints)."""
    from repro.minidb.engine import PreparedPlanCache

    db = _build("memory", _rows(20))
    cache = PreparedPlanCache(16)
    with db.snapshot(plan_cache=cache) as snapshot:
        snapshot.execute(QUERIES[0])
    misses_after_first = cache.misses
    db.append("r", _rows(5, start=20))  # trickle append keeps stats version
    with db.snapshot(plan_cache=cache) as snapshot:
        result, metrics = snapshot.execute_with_metrics(QUERIES[0])
    assert cache.misses == misses_after_first
    assert metrics.plan_cache_hits == 1
    # And the second snapshot saw the appended rows.
    assert sum(row[1] for row in result.rows) == 25
