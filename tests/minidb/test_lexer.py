"""Tokenizer tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.minidb.sqlparse.lexer import TokenKind, tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_identifiers_and_numbers(self):
        assert kinds("abc 12 1.5") == [
            (TokenKind.IDENT, "abc"),
            (TokenKind.NUMBER, "12"),
            (TokenKind.NUMBER, "1.5"),
        ]

    def test_scientific_notation(self):
        assert kinds("1e3 2.5E-2")[0] == (TokenKind.NUMBER, "1e3")
        assert kinds("1e3 2.5E-2")[1] == (TokenKind.NUMBER, "2.5E-2")

    def test_operators_longest_match(self):
        assert [t for _, t in kinds("a<=b<>c!=d>=e")] == [
            "a", "<=", "b", "<>", "c", "!=", "d", ">=", "e"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == TokenKind.IDENT
        assert tokens[0].text == "Weird Name"

    def test_line_comment_skipped(self):
        assert kinds("a -- comment here\n b") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b")]

    def test_punctuation(self):
        texts = [t for _, t in kinds("(a, b.c);")]
        assert texts == ["(", "a", ",", "b", ".", "c", ")", ";"]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind == TokenKind.END


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("select\n  from")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("a ? b")

    def test_error_reports_location(self):
        try:
            tokenize("abc\n  @")
        except SqlSyntaxError as error:
            assert error.line == 2
            assert error.column == 3
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
