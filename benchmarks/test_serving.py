"""PR 9 acceptance benchmark: serving under concurrent clients.

Closed-loop clients (one outstanding request each) drive a mixed
append+query workload over the wire at 1, 4, and 16 clients; every
request's client-perceived latency is recorded and summarised as
p50/p99 plus aggregate QPS per leg, all written to ``BENCH_PR9.json``.

The scaling gate compares 4 concurrent clients against the same four
clients on a *serialized* server (executor pool of one thread, so
requests queue and execute strictly one at a time with no shed/retry
noise). Concurrency must buy ≥2x aggregate QPS — but only on hosts
with ≥4 cores and outside smoke mode: on a 1-core box the ratio
measures the scheduler, not the architecture, so the numbers are
recorded and the assertion is skipped.

Every leg, gated or not, always asserts correctness: zero client
errors and a final server-side row count equal to the base table plus
every acknowledged append (read-your-writes across all clients).
"""

import statistics
import threading
import time

import pytest
from conftest import BENCH_SMOKE, host_metadata

from repro.minidb import Database, SqlType, TableSchema
from repro.server import ServerClient, serve_loopback

#: Rows pre-loaded into the served table before clients connect.
BASE_ROWS = 400 if BENCH_SMOKE else 2000

#: Requests per client per leg (closed loop: next request only after
#: the previous response).
OPS_PER_CLIENT = 8 if BENCH_SMOKE else 60

#: Rows per wire append (every fifth request is an append).
APPEND_ROWS = 4

SCHEMA = TableSchema.of(
    ("epc", SqlType.VARCHAR), ("rtime", SqlType.TIMESTAMP),
    ("loc", SqlType.INTEGER), ("qty", SqlType.INTEGER))

#: The read side of the workload: a full aggregate, a grouped
#: aggregate, and an index range probe — the three plan shapes the
#: snapshot layer serves most.
QUERIES = (
    "select count(*) as n, sum(qty) as total from reads",
    "select loc, count(*) as n from reads group by loc order by loc",
    ("select epc, qty from reads "
     f"where rtime >= 100 and rtime < {100 + BASE_ROWS // 4} "
     "order by rtime"),
)


def _base_rows():
    return [(f"epc{i % 300}", i, i % 12, i % 100)
            for i in range(BASE_ROWS)]


def _append_batch(client_idx, op):
    base = 1_000_000 + client_idx * 100_000 + op * 10
    return [(f"new{client_idx}-{op}-{j}", base + j, j % 12, j)
            for j in range(APPEND_ROWS)]


def _build_database():
    db = Database()
    db.create_table("reads", SCHEMA)
    db.load("reads", _base_rows())
    db.create_index("reads", "rtime")
    return db


def _percentile(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _run_leg(label, clients, record_metrics, **server_kwargs):
    """One serving leg; returns aggregate QPS."""
    database = _build_database()
    latencies = []
    errors = []
    appended = [0] * clients
    merge = threading.Lock()
    try:
        with serve_loopback(database, **server_kwargs) as handle:
            barrier = threading.Barrier(clients + 1)

            def run_client(idx):
                local = []
                acked = 0
                try:
                    with ServerClient(*handle.address) as client:
                        client.hello_with_retry()
                        barrier.wait()
                        for op in range(OPS_PER_CLIENT):
                            start = time.perf_counter()
                            if op % 5 == 4:
                                acked += client.append_with_retry(
                                    "reads", _append_batch(idx, op))
                            else:
                                client.query_with_retry(
                                    QUERIES[(idx + op) % len(QUERIES)])
                            local.append(time.perf_counter() - start)
                except Exception as exc:  # surfaced by the assert below
                    errors.append((idx, exc))
                    barrier.abort()  # never leave the other legs parked
                with merge:
                    latencies.extend(local)
                    appended[idx] = acked

            threads = [threading.Thread(target=run_client, args=(i,))
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                pass  # a client failed pre-barrier; the assert reports it
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            shed = handle.server.shed_count
        # The drain in serve_loopback has completed every in-flight
        # append, so the parent database must hold all acknowledged rows.
        final = database.execute(
            "select count(*) as n from reads").rows[0][0]
    finally:
        database.shutdown()
    assert not errors, errors
    assert final == BASE_ROWS + sum(appended)
    assert len(latencies) == clients * OPS_PER_CLIENT
    qps = len(latencies) / elapsed
    record_metrics(
        label, None, clients=clients, ops=len(latencies),
        qps=round(qps, 1), elapsed_s=round(elapsed, 6),
        p50_ms=round(_percentile(latencies, 0.50) * 1000, 3),
        p99_ms=round(_percentile(latencies, 0.99) * 1000, 3),
        mean_ms=round(statistics.fmean(latencies) * 1000, 3),
        shed=shed)
    return qps


def test_serving_mixed_load_scaling(record_metrics):
    cpu_count = host_metadata()["cpu_count"] or 1
    # On multicore hosts the concurrent legs fork a replica pool
    # (ProcessExecutor) so query execution escapes the GIL; on small
    # hosts the ThreadExecutor default keeps the benchmark honest.
    workers = 4 if cpu_count >= 4 else None
    concurrent_qps = {}
    for clients in (1, 4, 16):
        concurrent_qps[clients] = _run_leg(
            f"serve-{clients}clients", clients, record_metrics,
            workers=workers)
    serialized_qps = _run_leg(
        "serve-4clients-serialized", 4, record_metrics,
        workers=0, pool_size=1, max_inflight=32)
    record_metrics(
        "serving-speedup", None, cpu_count=cpu_count,
        gate_active=bool(not BENCH_SMOKE and cpu_count >= 4),
        speedup_4clients=round(concurrent_qps[4] / serialized_qps, 2))
    if not BENCH_SMOKE and cpu_count >= 4:
        assert concurrent_qps[4] >= 2.0 * serialized_qps, (
            f"4-client QPS {concurrent_qps[4]:.1f} vs serialized "
            f"{serialized_qps:.1f}")


def test_serving_saturation_sheds_not_queues(record_metrics):
    """A deliberately undersized server sheds; clients retry through."""
    qps = _run_leg("serve-8clients-tiny", 8, record_metrics,
                   max_inflight=2, session_depth=1, pool_size=2)
    assert qps > 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
