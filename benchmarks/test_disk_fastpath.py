"""PR 8 acceptance benchmark: the fast disk path.

Three numbers, all recorded to ``BENCH_PR8.json``:

* **group-commit throughput** — durable append commits with per-commit
  fsync and with ``group_commit=8``. The ≥3x gate (full mode only) is
  measured at the WAL layer with real append-record payloads: group
  commit changes only the durability stage (how often the log fsyncs),
  so that is the stage the ratio isolates — an end-to-end append also
  pays page/index work that fsync coalescing cannot touch, which on
  hosts with fast virtualised fsync would bound the ratio below the
  real coalescing win. The end-to-end workload still runs on both
  sides, is recorded for the trajectory file, and must prove
  coalescing via the fsync counters (machine-independent).
* **pruned scan** — a selective range scan over an id-clustered table
  with zone-map pruning on vs off: identical rows, and the pruned run
  faults at most half the pages. This page-count gate runs in smoke
  mode too — it is a property of the protocol, not of the clock.
* **readahead scan** — a full sequential scan with an 8-page readahead
  window vs none: identical rows, fewer demand reads.

``REPRO_BENCH_SMOKE=1`` drops iteration counts and skips timing-ratio
gates; correctness and counter assertions always run.
"""

import os
import time

import pytest
from conftest import BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.storage import wal as walmod

#: Rows per durable append batch. Deliberately tiny: group commit
#: targets the durability-bound regime (trickle ingest, one fsync per
#: small commit), where the fsync dominates the batch's page work.
APPEND_BATCH = 5

#: Append batches (one WAL commit each) per throughput side.
APPEND_BATCHES = 16 if BENCH_SMOKE else 250

#: Durable commits per side in the WAL-layer measurement.
WAL_COMMITS = 32 if BENCH_SMOKE else 400

#: Rows in the id-clustered scan table.
SCAN_ROWS = 4000

SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
    ("loc", SqlType.INTEGER), ("qty", SqlType.INTEGER))


def _rows(count, base=0):
    return [(base + i, f"epc{(base + i) % 400}", (base + i) % 12,
             (base + i) % 100)
            for i in range(count)]


def _append_run(path, group_commit):
    db = Database(storage="disk", storage_path=str(path),
                  group_commit=group_commit)
    db.create_table("reads", SCHEMA)
    db.load("reads", _rows(APPEND_BATCH))
    table = db.table("reads")
    batches = [_rows(APPEND_BATCH, base=APPEND_BATCH * (1 + i))
               for i in range(APPEND_BATCHES)]
    total = APPEND_BATCH * (1 + APPEND_BATCHES)
    # Measure the storage append path itself (WAL commit + pages), not
    # the statistics patching that Database.append layers on top.
    start = time.perf_counter()
    for batch in batches:
        table.append_rows(batch)
    elapsed = time.perf_counter() - start
    wal = db.storage.wal
    stats = {"rows_per_s": round(APPEND_BATCHES * APPEND_BATCH / elapsed, 1),
             "commits": wal.commits, "syncs": wal.syncs,
             "group_syncs": wal.group_syncs,
             "elapsed_s": round(elapsed, 6)}
    db.shutdown()
    reopened = Database(storage="disk", storage_path=str(path))
    try:
        count = reopened.execute(
            "select count(*) as n from reads").rows[0][0]
    finally:
        reopened.shutdown()
    assert count == total  # every coalesced commit survived the reopen
    return stats


def _wal_run(path, group_commit):
    """Durable-commit throughput of the WAL with a real append payload."""
    payload = walmod.encode_rows_op(
        walmod.OP_APPEND, "reads", _rows(APPEND_BATCH))
    log = walmod.WriteAheadLog(str(path), group_commit=group_commit)
    start = time.perf_counter()
    for epoch in range(1, WAL_COMMITS + 1):
        log.commit([payload], epoch)
    log.sync_pending()
    elapsed = time.perf_counter() - start
    stats = {"commits_per_s": round(WAL_COMMITS / elapsed, 1),
             "commits": log.commits, "syncs": log.syncs,
             "group_syncs": log.group_syncs,
             "elapsed_s": round(elapsed, 6)}
    log.close()
    replayed = walmod.WriteAheadLog(str(path), sync=False)
    try:
        durable = sum(1 for _ in replayed.committed_transactions())
    finally:
        replayed.close()
    assert durable == WAL_COMMITS  # every coalesced commit is on disk
    return stats


def test_group_commit_throughput(tmp_path, record_metrics):
    wal_baseline = _wal_run(tmp_path / "wal-percommit", None)
    wal_grouped = _wal_run(tmp_path / "wal-group8", 8)
    record_metrics("wal-percommit", None, **wal_baseline)
    record_metrics("wal-group8", None, **wal_grouped)
    baseline = _append_run(tmp_path / "percommit", None)
    grouped = _append_run(tmp_path / "grouped", 8)
    record_metrics("append-percommit", None, **baseline)
    record_metrics("append-group8", None, **grouped)
    # Coalescing is machine-independent: ~8 commits per fsync.
    for side in (wal_baseline, baseline):
        assert side["syncs"] >= side["commits"]
    for side in (wal_grouped, grouped):
        assert side["syncs"] < side["commits"] // 2, side
        assert side["group_syncs"] > 0
    if not BENCH_SMOKE:
        speedup = (wal_grouped["commits_per_s"]
                   / wal_baseline["commits_per_s"])
        assert speedup >= 3.0, (wal_baseline, wal_grouped)
        record_metrics(
            "group-commit-speedup", None, speedup=round(speedup, 2),
            e2e_speedup=round(
                grouped["rows_per_s"] / baseline["rows_per_s"], 2))


def _pruned_scan(path, prune, sql):
    os.environ["REPRO_ZONE_PRUNE"] = prune
    try:
        db = Database(storage="disk", storage_path=str(path),
                      buffer_pages=8, page_size=512)
        try:
            db.execute("select id from reads where id = -1")  # warm stats
            start = time.perf_counter()
            result, metrics = db.execute_with_metrics(sql)
            elapsed = time.perf_counter() - start
            return result.rows, metrics, elapsed
        finally:
            db.shutdown()
    finally:
        os.environ.pop("REPRO_ZONE_PRUNE", None)


def test_pruned_scan_page_reads(tmp_path, record_metrics, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
    path = tmp_path / "db"
    db = Database(storage="disk", storage_path=str(path),
                  buffer_pages=8, page_size=512)
    db.create_table("reads", SCHEMA)
    db.load("reads", _rows(SCAN_ROWS))  # id-clustered pages
    db.shutdown()

    sql = ("select epc, qty from reads "
           f"where id >= {SCAN_ROWS // 2} and id < {SCAN_ROWS // 2 + 200}")
    pruned_rows, pruned, pruned_s = _pruned_scan(path, "1", sql)
    full_rows, full, full_s = _pruned_scan(path, "0", sql)
    assert pruned_rows == full_rows
    assert len(pruned_rows) == 200
    assert pruned.pages_pruned > 0
    assert full.pages_read > 0
    assert pruned.pages_read <= full.pages_read // 2, (
        f"pruned scan read {pruned.pages_read}/{full.pages_read} pages")
    record_metrics("scan-pruned", pruned, elapsed_s=round(pruned_s, 6))
    record_metrics("scan-unpruned", full, elapsed_s=round(full_s, 6))


def test_readahead_sequential_scan(tmp_path, record_metrics, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
    path = tmp_path / "db"
    db = Database(storage="disk", storage_path=str(path),
                  buffer_pages=8, page_size=512)
    db.create_table("reads", SCHEMA)
    db.load("reads", _rows(SCAN_ROWS))
    db.shutdown()

    sql = "select count(*) as n, sum(qty) as total from reads"
    results = {}
    for label, readahead in (("plain", 0), ("readahead8", 8)):
        db = Database(storage="disk", storage_path=str(path),
                      buffer_pages=8, page_size=512, readahead=readahead)
        try:
            db.execute("select id from reads where id = -1")
            start = time.perf_counter()
            rows, metrics = db.execute_with_metrics(sql)
            results[label] = (rows.rows, metrics,
                              time.perf_counter() - start)
        finally:
            db.shutdown()
    assert results["plain"][0] == results["readahead8"][0]
    plain, fetched = results["plain"][1], results["readahead8"][1]
    assert fetched.pages_prefetched > 0
    assert fetched.pages_read < plain.pages_read
    for label, (_, metrics, elapsed) in results.items():
        record_metrics(f"seqscan-{label}", metrics,
                       elapsed_s=round(elapsed, 6))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
