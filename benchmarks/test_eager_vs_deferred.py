"""Eager vs deferred cleansing (§6.1's remark on eager cost).

The paper: "the cost of eager cleansing should be comparable to that of
q" — i.e. querying a pre-materialized clean copy costs about what the
dirty query costs, with cleansing paid up front and re-paid whenever a
rule changes.
"""

import time

import pytest
from conftest import once, settings

from repro.experiments.common import workbench_for
from repro.rewrite.eager import materialize_cleansed

RULES = ("reader", "duplicate", "replacing")


@pytest.fixture(scope="module")
def eager_setup():
    bench = workbench_for(settings(10.0), rule_names=RULES)
    if "caser_clean_bench" not in bench.database.catalog:
        materialize_cleansed(bench.database, bench.registry, "caser",
                             "caser_clean_bench")
    return bench


def test_materialization_cost(benchmark):
    bench = workbench_for(settings(10.0), rule_names=RULES)
    if "caser_clean_tmp" in bench.database.catalog:
        bench.database.drop_table("caser_clean_tmp")
    benchmark.group = "eager-vs-deferred"
    once(benchmark, lambda: materialize_cleansed(
        bench.database, bench.registry, "caser", "caser_clean_tmp"))
    bench.database.drop_table("caser_clean_tmp")


def test_query_on_clean_copy(benchmark, eager_setup):
    bench = eager_setup
    sql = bench.q1(0.10).replace("from caser", "from caser_clean_bench")
    benchmark.group = "eager-vs-deferred"
    once(benchmark, lambda: bench.database.execute(sql))


def test_deferred_best_rewrite(benchmark, eager_setup):
    bench = eager_setup
    sql = bench.q1(0.10)
    benchmark.group = "eager-vs-deferred"
    once(benchmark, lambda: bench.engine.execute(sql))


def test_eager_query_comparable_to_dirty(benchmark, eager_setup):
    """The paper's claim, asserted: clean-copy query within ~2x of the
    dirty query (anomaly volume is small)."""
    bench = eager_setup
    dirty_sql = bench.q1(0.10)
    clean_sql = dirty_sql.replace("from caser", "from caser_clean_bench")

    def measure():
        start = time.perf_counter()
        bench.database.execute(dirty_sql)
        dirty = time.perf_counter() - start
        start = time.perf_counter()
        bench.database.execute(clean_sql)
        clean = time.perf_counter() - start
        return dirty, clean

    dirty, clean = once(benchmark, measure)
    assert clean < 2.0 * dirty + 0.05
