"""PR 1 acceptance benchmark: cleansing-region cache warm vs cold.

A dashboard-style workload issues 20 aggregate queries whose rtime
windows all fall inside the first query's window. With the region cache
on, query 1 materializes the cleansed region once ("cached-cold") and
every later query is answered by filtering the cached region — skipping
the per-rule sort+window passes entirely. The steady-state (second-pass)
speedup must be at least 5x over an uncached engine, with row-identical
results.

Two rules ("reader", "duplicate") keep the expanded rewrite feasible
while making the cold path pay for two chained window passes, as a real
multi-rule deployment would.
"""

import time

import pytest
from conftest import settings

from repro.experiments.common import workbench_for
from repro.rewrite.cache import CacheOptions
from repro.rewrite.engine import DeferredCleansingEngine

#: The first query's window covers every later query's window.
SELECTIVITIES = [0.30] + [0.05 + 0.012 * i for i in range(19)]

QUERY = ("select reader, count(*) as n, avg(rtime) as mean_rtime "
         "from caser where rtime <= {t} group by reader")

MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def two_rule_bench():
    return workbench_for(settings(10.0), rule_names=("reader", "duplicate"))


def _workload(bench):
    from repro.workloads import timestamp_for_fraction_below

    rtimes = bench.case_rtimes()
    return [QUERY.format(t=timestamp_for_fraction_below(rtimes, sel))
            for sel in SELECTIVITIES]


def _run_pass(engine, queries):
    rows = []
    start = time.perf_counter()
    for sql in queries:
        rows.append(sorted(engine.execute(sql).rows))
    return time.perf_counter() - start, rows


def test_repeated_queries_warm_vs_cold(two_rule_bench, record_metrics):
    bench = two_rule_bench
    queries = _workload(bench)

    cached_engine = DeferredCleansingEngine(bench.database, bench.registry,
                                            cache=CacheOptions())
    uncached_engine = DeferredCleansingEngine(bench.database, bench.registry)

    # First pass pays the one-time region materialization on query 1.
    first_elapsed, first_rows = _run_pass(cached_engine, queries)
    # Second pass is the steady state: every query hits the region cache.
    warm_elapsed, warm_rows = _run_pass(cached_engine, queries)
    cold_elapsed, cold_rows = _run_pass(uncached_engine, queries)

    assert warm_rows == cold_rows, "cached results must be row-identical"
    assert first_rows == cold_rows, "cold-store pass must also be identical"

    cache = cached_engine.region_cache
    assert cache is not None
    assert cache.hits >= 2 * len(queries) - 1, (
        "all queries after the first must be region-cache hits")

    speedup = cold_elapsed / warm_elapsed
    record_metrics(
        "repeated-queries", None,
        queries=len(queries),
        first_pass_s=round(first_elapsed, 6),
        warm_pass_s=round(warm_elapsed, 6),
        cold_pass_s=round(cold_elapsed, 6),
        speedup=round(speedup, 3),
        region_cache={"hits": cache.hits, "misses": cache.misses,
                      "stores": cache.stores,
                      "invalidations": cache.invalidations},
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm pass must be >={MIN_SPEEDUP}x faster than cold "
        f"(got {speedup:.2f}x: warm {warm_elapsed:.3f}s, "
        f"cold {cold_elapsed:.3f}s)")


def test_repeated_queries_disabled_cache_matches(two_rule_bench):
    """CacheOptions(enabled=False) must behave exactly like no cache."""
    bench = two_rule_bench
    queries = _workload(bench)[:3]

    disabled = DeferredCleansingEngine(bench.database, bench.registry,
                                       cache=CacheOptions(enabled=False))
    assert disabled.region_cache is None
    baseline = DeferredCleansingEngine(bench.database, bench.registry)
    for sql in queries:
        assert sorted(disabled.execute(sql).rows) == \
            sorted(baseline.execute(sql).rows)
