"""PR 6 acceptance benchmark: compiled fused kernels vs the vectorized
interpreter.

The same filter and join micro-workloads as the PR 3 vectorization
benchmark, each executed through the interpreted batch path
(``REPRO_CODEGEN=0``) and through generated fused kernels
(``REPRO_CODEGEN=1``) at the default batch size. Rows must be
byte-identical; the compiled run must beat the interpreter by at least
2x on hosts with >= 4 cores (smaller hosts record the numbers without
gating — the ratio, not the absolute time, is what varies with
contention).

All timings land in ``BENCH_PR6.json`` via the shared recorder, with
the interpreted run as ``before_s`` and the compiled run as
``after_s``, plus the codegen cache/compile metrics for the compiled
pass.
"""

import os
import random
import time

import pytest
from conftest import BENCH_SCALE, BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.codegen import clear_cache, forced_codegen

#: Rows in the synthetic read stream (~36k at the default scale 12).
STREAM_ROWS = 3000 * BENCH_SCALE

#: Required end-to-end advantage of compiled kernels over the
#: vectorized interpreter on the gated workloads.
MIN_SPEEDUP = 2.0

#: The speedup gate only applies on hosts with this many cores; below
#: it, scheduling noise dominates and the numbers are only recorded.
GATE_MIN_CPUS = 4

#: Timing passes per mode; the minimum is reported (noise floor).
PASSES = 1 if BENCH_SMOKE else 3

WORKLOADS = {
    "filter": ("select id, qty from reads "
               "where rtime < 60000 and qty > 10 and loc != 'L0'"),
    "join": ("select r.epc, d.zone, r.qty from reads r, dim d "
             "where r.loc = d.loc and r.rtime < 70000"),
}


@pytest.fixture(scope="module")
def stream_db():
    rng = random.Random(31)
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
        ("loc", SqlType.VARCHAR), ("rtime", SqlType.INTEGER),
        ("qty", SqlType.INTEGER)))
    db.load("reads", [
        (i, f"epc{rng.randrange(400)}", f"L{rng.randrange(12)}",
         rng.randrange(100000),
         None if rng.random() < 0.1 else rng.randrange(100))
        for i in range(STREAM_ROWS)])
    db.create_table("dim", TableSchema.of(
        ("loc", SqlType.VARCHAR), ("zone", SqlType.VARCHAR)))
    db.load("dim", [(f"L{i}", f"Z{i % 4}") for i in range(12)])
    return db


def _timed(db, sql, codegen):
    """(best wall-clock, rows, metrics) for *sql* with codegen
    on/off."""
    with forced_codegen(codegen):
        db.plan_cache.clear()
        result, metrics = db.execute_with_metrics(sql)  # warm plan cache
        best = float("inf")
        for _ in range(PASSES):
            start = time.perf_counter()
            result, metrics = db.execute_with_metrics(sql)
            best = min(best, time.perf_counter() - start)
    return best, result.rows, metrics


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_codegen_speedup(stream_db, workload, record_metrics):
    sql = WORKLOADS[workload]
    clear_cache()
    before_s, interpreted_rows, interpreted_metrics = _timed(
        stream_db, sql, False)
    assert interpreted_metrics.fused_pipelines == 0

    after_s, compiled_rows, compiled_metrics = _timed(stream_db, sql, True)
    assert compiled_rows == interpreted_rows, (
        f"compilation changed the {workload} result")
    assert compiled_metrics.fused_pipelines > 0, (
        f"the {workload} plan did not fuse any pipeline")

    speedup = before_s / after_s
    record_metrics(
        f"codegen-{workload}", compiled_metrics,
        rows=len(interpreted_rows),
        before_s=round(before_s, 6),
        after_s=round(after_s, 6),
        speedup=round(speedup, 3),
        fused_pipelines=compiled_metrics.fused_pipelines,
    )
    if BENCH_SMOKE or (os.cpu_count() or 1) < GATE_MIN_CPUS:
        return
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: compiled kernels must be >={MIN_SPEEDUP}x faster "
        f"than the vectorized interpreter (got {speedup:.2f}x: "
        f"interpreted {before_s:.3f}s, compiled {after_s:.3f}s)")


def test_compile_cost_is_amortized(stream_db, record_metrics):
    """Kernels compile once per source: the cold pass pays compile_ms,
    every re-plan after that hits the kernel cache."""
    sql = WORKLOADS["filter"]
    clear_cache()
    with forced_codegen(True):
        stream_db.plan_cache.clear()
        _, cold = stream_db.execute_with_metrics(sql)
        stream_db.plan_cache.clear()
        _, warm = stream_db.execute_with_metrics(sql)
    assert cold.codegen_cache_misses >= 1
    assert warm.codegen_cache_hits >= 1
    assert warm.codegen_cache_misses == 0
    record_metrics("codegen-compile-cost",
                   compile_ms=round(cold.compile_ms, 3),
                   cache_hits_on_replan=warm.codegen_cache_hits)
