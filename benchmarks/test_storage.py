"""PR 7 acceptance benchmark: the out-of-core storage engine.

Three storage-path numbers, all recorded to the current per-PR results
file (``BENCH_PR8.json``; see ``conftest.BENCH_RESULTS_PATH``):

* **cold vs warm scan** — an aggregation over a freshly reopened disk
  database (every page faulted through the buffer pool and decoded)
  against the same query re-run with the pool warm. The cold pass must
  actually read pages (counters prove the path ran); rows must be
  byte-identical to an in-memory database holding the same data.
* **append-commit throughput** — durable appends (WAL + fsync per
  batch) in rows/s, plus the WAL byte volume, verified by reopening and
  recounting.
* **bounded-pool scan** — the same scan with an 8-page pool on a
  dataset ~20x larger than the pool: peak residency must respect the
  bound while the answer stays identical (the out-of-core claim).

``REPRO_BENCH_SMOKE=1`` drops iteration counts to the minimum and skips
the timing-ratio gates; correctness and counter assertions always run.
"""

import random
import time

import pytest
from conftest import BENCH_SCALE, BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema

#: Rows in the synthetic read stream (~12k at the default scale 12).
STREAM_ROWS = 1000 * BENCH_SCALE

#: Rows per durable append batch in the throughput measurement.
APPEND_BATCH = 500

#: Append batches (one WAL commit + fsync each).
APPEND_BATCHES = 2 if BENCH_SMOKE else 10

SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
    ("loc", SqlType.VARCHAR), ("rtime", SqlType.INTEGER),
    ("qty", SqlType.INTEGER))

QUERY = ("select loc, count(*) as n, sum(qty) as total "
         "from reads group by loc order by loc")


def _rows(count, base=0):
    rng = random.Random(71 + base)
    return [(base + i, f"epc{rng.randrange(400)}", f"L{rng.randrange(12)}",
             rng.randrange(100000),
             None if rng.random() < 0.1 else rng.randrange(100))
            for i in range(count)]


def _build_disk(path, rows, **kwargs):
    db = Database(storage="disk", storage_path=str(path), **kwargs)
    db.create_table("reads", SCHEMA)
    db.load("reads", rows)
    return db


def test_cold_vs_warm_scan(tmp_path, record_metrics):
    rows = _rows(STREAM_ROWS)
    _build_disk(tmp_path / "db", rows).shutdown()

    memory_db = Database()
    memory_db.create_table("reads", SCHEMA)
    memory_db.load("reads", rows)
    expected = memory_db.execute(QUERY).rows

    db = Database(storage="disk", storage_path=str(tmp_path / "db"))
    try:
        start = time.perf_counter()
        result, cold = db.execute_with_metrics(QUERY)
        cold_s = time.perf_counter() - start
        assert result.rows == expected
        assert cold.pages_read > 0, "cold scan never touched the disk"

        start = time.perf_counter()
        result, warm = db.execute_with_metrics(QUERY)
        warm_s = time.perf_counter() - start
        assert result.rows == expected
    finally:
        db.shutdown()

    record_metrics("cold-scan", cold, elapsed_s=round(cold_s, 6))
    record_metrics("warm-scan", warm, elapsed_s=round(warm_s, 6))
    if not BENCH_SMOKE:
        assert warm_s <= cold_s * 1.5, (cold_s, warm_s)


def test_append_commit_throughput(tmp_path, record_metrics):
    db = _build_disk(tmp_path / "db", _rows(APPEND_BATCH))
    total = APPEND_BATCH
    start = time.perf_counter()
    for batch in range(APPEND_BATCHES):
        db.append("reads", _rows(APPEND_BATCH, base=total))
        total += APPEND_BATCH
    elapsed = time.perf_counter() - start
    wal_bytes = db.storage.wal.bytes_written
    commits = db.storage.wal.commits
    db.shutdown()

    reopened = Database(storage="disk", storage_path=str(tmp_path / "db"))
    try:
        count = reopened.execute(
            "select count(*) as n from reads").rows[0][0]
    finally:
        reopened.shutdown()
    assert count == total

    record_metrics(
        "append-commit", None,
        rows_per_s=round(APPEND_BATCHES * APPEND_BATCH / elapsed, 1),
        batches=APPEND_BATCHES, wal_bytes=wal_bytes, commits=commits,
        elapsed_s=round(elapsed, 6))


def test_bounded_pool_scan(tmp_path, record_metrics):
    pool = 8
    rows = _rows(STREAM_ROWS)
    _build_disk(tmp_path / "db", rows, buffer_pages=pool,
                page_size=512).shutdown()

    memory_db = Database()
    memory_db.create_table("reads", SCHEMA)
    memory_db.load("reads", rows)
    expected = memory_db.execute(QUERY).rows

    db = Database(storage="disk", storage_path=str(tmp_path / "db"),
                  buffer_pages=pool, page_size=512)
    try:
        start = time.perf_counter()
        result, metrics = db.execute_with_metrics(QUERY)
        elapsed = time.perf_counter() - start
        counters = db.storage.counters
        heap_pages = len(db.table("reads").rows.page_ids)
    finally:
        db.shutdown()

    assert result.rows == expected
    assert heap_pages >= pool * 10, (
        f"dataset too small to stress the pool: {heap_pages} pages")
    assert counters["peak_resident"] <= pool, counters
    assert counters["overflow_events"] == 0, counters
    record_metrics("bounded-pool-scan", metrics, elapsed_s=round(
        elapsed, 6), heap_pages=heap_pages, **counters)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
