"""PR 3 acceptance benchmark: vectorized batch execution vs the
tuple-at-a-time interpreter.

Three micro-workloads over a synthetic RFID read stream — filter-heavy
selection, an equi-join against a location dimension, and a per-EPC
sliding window — each executed with batch execution disabled
(``REPRO_BATCH_SIZE=0``, the original per-row interpreter) and at batch
sizes 1, 256, and 4096. Every mode must produce byte-identical rows; the
best batch configuration must beat the scalar path by at least 2x on the
filter and join workloads. Batch size 1 is expected to be *slower* than
scalar (per-chunk overhead with no amortization) — it is measured to map
the curve, not to win.

All timings and per-operator metrics land in ``BENCH_PR3.json`` via the
shared recorder, with the scalar run as ``before_s`` and each batch size
as an ``after`` entry.
"""

import random
import time

import pytest
from conftest import BENCH_SCALE, BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.vector import forced_batch_size

#: Rows in the synthetic read stream (~36k at the default scale 12).
STREAM_ROWS = 3000 * BENCH_SCALE

BATCH_SIZES = (1, 256, 4096)

#: Required end-to-end advantage of the best batch size over scalar.
MIN_SPEEDUP = 2.0

#: Timing passes per mode; the minimum is reported (noise floor).
PASSES = 1 if BENCH_SMOKE else 3

WORKLOADS = {
    "filter": ("select id, qty from reads "
               "where rtime < 60000 and qty > 10 and loc != 'L0'"),
    "join": ("select r.epc, d.zone, r.qty from reads r, dim d "
             "where r.loc = d.loc and r.rtime < 70000"),
    "window": ("select epc, rtime, sum(qty) over (partition by epc "
               "order by rtime rows between 5 preceding and current row) "
               "from reads where rtime < 50000"),
}

#: Workloads whose dominant operators are fully vectorized and must
#: clear MIN_SPEEDUP; the window workload is recorded but not gated (its
#: runtime is dominated by the per-partition frame pass, which batching
#: only partially reaches).
GATED = ("filter", "join")


@pytest.fixture(scope="module")
def stream_db():
    rng = random.Random(31)
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
        ("loc", SqlType.VARCHAR), ("rtime", SqlType.INTEGER),
        ("qty", SqlType.INTEGER)))
    db.load("reads", [
        (i, f"epc{rng.randrange(400)}", f"L{rng.randrange(12)}",
         rng.randrange(100000),
         None if rng.random() < 0.1 else rng.randrange(100))
        for i in range(STREAM_ROWS)])
    db.create_table("dim", TableSchema.of(
        ("loc", SqlType.VARCHAR), ("zone", SqlType.VARCHAR)))
    db.load("dim", [(f"L{i}", f"Z{i % 4}") for i in range(12)])
    return db


def _timed(db, sql, batch_size):
    """(best wall-clock, rows, metrics) for *sql* at *batch_size*."""
    with forced_batch_size(batch_size):
        db.plan_cache.clear()
        rows, metrics = db.execute_with_metrics(sql)  # warm plan cache
        best = float("inf")
        for _ in range(PASSES):
            start = time.perf_counter()
            result, metrics = db.execute_with_metrics(sql)
            best = min(best, time.perf_counter() - start)
    return best, result.rows, metrics


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_vectorized_speedup(stream_db, workload, record_metrics):
    sql = WORKLOADS[workload]
    before_s, scalar_rows, scalar_metrics = _timed(stream_db, sql, 0)
    assert scalar_metrics.batches == 0

    after = {}
    for size in BATCH_SIZES:
        elapsed, rows, metrics = _timed(stream_db, sql, size)
        assert rows == scalar_rows, (
            f"batch size {size} changed the {workload} result")
        assert metrics.batches > 0, (
            f"batch size {size} did not execute the batch path")
        after[size] = (elapsed, metrics)

    best_size = min(after, key=lambda size: after[size][0])
    best_s = after[best_size][0]
    speedup = before_s / best_s
    record_metrics(
        f"vectorized-{workload}", after[best_size][1],
        rows=len(scalar_rows),
        before_s=round(before_s, 6),
        after={str(size): round(elapsed, 6)
               for size, (elapsed, _) in after.items()},
        best_batch_size=best_size,
        after_s=round(best_s, 6),
        speedup=round(speedup, 3),
        selection_density=after[best_size][1].selection_density,
    )
    if BENCH_SMOKE or workload not in GATED:
        return
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: batch execution must be >={MIN_SPEEDUP}x faster "
        f"than tuple-at-a-time (got {speedup:.2f}x: "
        f"scalar {before_s:.3f}s, batch[{best_size}] {best_s:.3f}s)")


def test_batch_size_one_pays_overhead_but_stays_correct(stream_db):
    """The degenerate batch size must be correct even if slow."""
    sql = WORKLOADS["filter"]
    _, scalar_rows, _ = _timed(stream_db, sql, 0)
    _, one_rows, metrics = _timed(stream_db, sql, 1)
    assert one_rows == scalar_rows
    # One row per chunk: the scan must emit one batch per stored row.
    assert metrics.batches >= STREAM_ROWS
