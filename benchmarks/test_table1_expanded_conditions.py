"""Table 1: regenerate the expanded conditions for q1 and q2.

Benchmarks the Figure-4 analysis itself and asserts the structure the
paper's Table 1 reports: which rules admit an expanded condition for
each query, and the shape of the derived rtime bounds.
"""

from conftest import once

from repro.experiments.table1 import table1_conditions
from repro.workloads import (
    timestamp_for_fraction_above,
    timestamp_for_fraction_below,
)


def test_table1(benchmark, db10_all_rules):
    bench = db10_all_rules
    rtimes = bench.case_rtimes()
    t1 = timestamp_for_fraction_below(rtimes, 0.10)
    t2 = timestamp_for_fraction_above(rtimes, 0.10)

    table = once(benchmark, lambda: table1_conditions(bench, t1, t2))

    # Feasibility pattern of Table 1: cycle infeasible for both queries;
    # missing infeasible for q1 only.
    assert table["cycle"] == {"q1": "{}", "q2": "{}"}
    assert table["missing"]["q1"] == "{}"
    assert table["missing"]["q2"] != "{}"
    # Derived bound shapes (t1=5min, t2=10min, t3=20min).
    assert f"rtime < {t1 + 600}" in table["reader"]["q1"]
    assert "readerX" in table["reader"]["q1"]
    assert f"rtime <= {t1}" in table["duplicate"]["q1"]
    assert f"rtime > {t2 - 300}" in table["duplicate"]["q2"]
    assert f"rtime < {t1 + 1200}" in table["replacing"]["q1"]
    assert f"rtime >= {t2}" in table["replacing"]["q2"]
