"""Figure 7 (a) and (d): q1/q2 elapsed time vs rtime selectivity.

One benchmark per (query, selectivity, variant). Shape assertions
(deferred cleansing ≪ naive) live in ``test_fig7_shape``; compare the
saved timings across variants with ``--benchmark-group-by=group``.
"""

import pytest
from conftest import once

SELECTIVITIES = (0.01, 0.10, 0.40)
VARIANTS = {
    "q": None,
    "q_e": "expanded",
    "q_j": "joinback",
    "q_n": "naive",
}


def _run(bench, sql, strategy):
    if strategy is None:
        return bench.database.execute(sql)
    return bench.engine.execute(sql, strategies={strategy})


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig7(benchmark, db10_reader_only, query_name, variant, selectivity):
    bench = db10_reader_only
    sql = getattr(bench, query_name)(selectivity)
    benchmark.group = f"fig7-{query_name}-sel{int(selectivity * 100)}"
    result = once(benchmark, lambda: _run(bench, sql,
                                          VARIANTS[variant]))
    assert result is not None


@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig7_shape(benchmark, db10_reader_only, query_name):
    """The paper's headline: both rewrites beat naive decisively."""
    import time

    bench = db10_reader_only
    sql = getattr(bench, query_name)(0.10)

    def measure(strategy):
        start = time.perf_counter()
        bench.engine.execute(sql, strategies={strategy})
        return time.perf_counter() - start

    def shape():
        return measure("expanded"), measure("joinback"), measure("naive")

    expanded, joinback, naive = once(benchmark, shape)
    assert expanded < naive, "expanded rewrite must beat naive"
    assert joinback < naive, "join-back rewrite must beat naive"
