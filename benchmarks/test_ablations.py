"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to paper figures; they isolate the mechanisms
the paper credits for the rewrites' performance:

* order sharing between the cleansing window and q1's analytic window;
* the improved join-back (filtering joined-back rows by ec);
* cost-based dimension pushdown vs push-none / push-all;
* sliding-frame window aggregation vs naive per-row rescan.
"""

import pytest
from conftest import once

from repro.minidb import PlannerOptions
from repro.rewrite.strategies import joinback_subplan


class TestOrderSharing:
    @pytest.mark.parametrize("sharing", [True, False])
    def test_q1_expanded(self, benchmark, db10_reader_only, sharing):
        bench = db10_reader_only
        sql = bench.q1(0.10)
        result = bench.engine.rewrite(sql, strategies={"expanded"})
        options = PlannerOptions(order_sharing=sharing)
        benchmark.group = "ablation-order-sharing"

        def run():
            plan = bench.database.plan(result.chosen.logical, options)
            return list(plan.rows())

        once(benchmark, run)

    def test_sharing_removes_a_sort(self, benchmark, db10_reader_only):
        bench = db10_reader_only
        sql = bench.q1(0.10)
        result = bench.engine.rewrite(sql, strategies={"expanded"})

        def sort_counts():
            counts = []
            for sharing in (True, False):
                options = PlannerOptions(order_sharing=sharing)
                plan = bench.database.plan(result.chosen.logical, options)
                list(plan.rows())
                from repro.minidb.engine import ExecutionMetrics
                counts.append(
                    ExecutionMetrics.from_plan(plan).sort_operators)
            return counts

        shared, unshared = once(benchmark, sort_counts)
        assert shared < unshared


class TestJoinbackEcFilter:
    @pytest.mark.parametrize("use_ec", [True, False])
    def test_rows_cleansed(self, benchmark, db10_reader_only, use_ec):
        """The improved join-back (§5.3) pulls back only rows passing ec;
        the plain variant pulls entire sequences."""
        bench = db10_reader_only
        result = bench.engine.rewrite(bench.q1(0.10),
                                      strategies={"joinback"})
        ec = result.analysis.ec_conjuncts if use_ec else None
        rules = bench.registry.rules_for("caser")
        s_conjuncts = result.context.s_conjuncts
        benchmark.group = "ablation-joinback-ec"

        def run():
            subplan = joinback_subplan(bench.database, bench.registry,
                                       rules, "caser", s_conjuncts, ec)
            return len(bench.database.execute(subplan))

        rows = once(benchmark, run)
        assert rows > 0

    def test_ec_reduces_joined_back_rows(self, db10_reader_only):
        bench = db10_reader_only
        result = bench.engine.rewrite(bench.q1(0.10),
                                      strategies={"joinback"})
        rules = bench.registry.rules_for("caser")
        s_conjuncts = result.context.s_conjuncts

        def rows_with(ec):
            subplan = joinback_subplan(bench.database, bench.registry,
                                       rules, "caser", s_conjuncts, ec)
            return len(bench.database.execute(subplan))

        improved = rows_with(result.analysis.ec_conjuncts)
        plain = rows_with(None)
        assert improved < plain


class TestJoinPushdownHeuristic:
    def test_candidate_costs_are_ranked(self, benchmark, db10_reader_only):
        """The m+1/n+1 enumeration must cover push-none..push-all and the
        chosen candidate must be the cost minimum."""
        bench = db10_reader_only
        sql = bench.q2(0.40)

        def decide():
            return bench.engine.rewrite(sql)

        result = once(benchmark, decide)
        joinback_labels = [c.label for c in result.candidates
                           if c.strategy == "joinback"]
        assert "joinback" in joinback_labels
        assert any("+1dims" in label for label in joinback_labels)
        best = min(result.candidates, key=lambda c: c.cost)
        assert result.chosen.label == best.label

    @pytest.mark.parametrize("label", ["joinback", "joinback+1dims"])
    def test_execute_candidates(self, benchmark, db10_reader_only, label):
        bench = db10_reader_only
        sql = bench.q2(0.40)
        result = bench.engine.rewrite(sql, strategies={"joinback"})
        candidate = {c.label: c for c in result.candidates}[label]
        benchmark.group = "ablation-join-pushdown"
        once(benchmark, lambda: list(candidate.physical.rows()))


class TestWindowExecution:
    @pytest.mark.parametrize("naive", [False, True])
    def test_sliding_vs_naive(self, benchmark, db10_reader_only, naive):
        """Sliding-frame aggregation vs per-row frame rescan on a real
        cleansing workload (the reader rule's RANGE window)."""
        bench = db10_reader_only
        sql = bench.q1(0.20)
        result = bench.engine.rewrite(sql, strategies={"naive"})
        options = PlannerOptions(naive_windows=naive)
        benchmark.group = "ablation-window-exec"

        def run():
            plan = bench.database.plan(result.chosen.logical, options)
            return len(list(plan.rows()))

        assert once(benchmark, run) >= 0
