"""PR 10 acceptance benchmark: encoded columnar execution vs plain.

Two micro-workloads over a synthetic read stream whose interesting
columns are low-cardinality — ``loc`` clustered (runs of ~512 rows, so
the encoder picks RLE) and ``tag`` scattered (64 distinct values, so
it picks a sorted dictionary):

- ``rle-filter``: a selective equality filter plus COUNT over the
  clustered column — the encoded path skips whole false runs instead
  of testing every row;
- ``dict-range``: selective stacked range conjuncts over the
  dictionary column — the encoded path evaluates every bound once per
  distinct value (a code-range bisect) instead of once per row.

Each runs through ``Database(encode=True)`` and ``Database(encode=False)``
over identical data. Rows must be byte-identical; the encoded run must
beat plain by at least 2x on hosts with >= 4 cores (smaller hosts
record the numbers without gating). A third test builds the same table
on disk both ways and pins the dictionary page layout to at least a
30% smaller ``data.pages`` — that one is deterministic, so it gates
everywhere.

All numbers land in ``BENCH_PR10.json`` via the shared recorder, with
the plain run as ``before_s`` and the encoded run as ``after_s``.
"""

import os
import random
import time

import pytest
from conftest import BENCH_SCALE, BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema
from repro.minidb.vector import forced_batch_size

#: Rows in the synthetic read stream (~36k at the default scale 12).
STREAM_ROWS = 3000 * BENCH_SCALE

#: Required end-to-end advantage of encoded execution on the gated
#: filter/scan workloads.
MIN_SPEEDUP = 2.0

#: Required on-disk shrink from the dictionary page layout.
MAX_SIZE_RATIO = 0.7

#: The speedup gate only applies on hosts with this many cores; below
#: it, scheduling noise dominates and the numbers are only recorded.
GATE_MIN_CPUS = 4

#: Timing passes per mode; the minimum is reported (noise floor).
PASSES = 1 if BENCH_SMOKE else 3

WORKLOADS = {
    "rle-filter": ("select count(*) as n, sum(qty) as q from reads "
                   "where loc = 'L61'"),
    "dict-range": ("select count(*) as n, sum(qty) as q from reads "
                   "where tag >= 't40' and tag <= 't40' "
                   "and tag >= 't30' and tag <= 't50' "
                   "and tag >= 't20' and tag <= 't60'"),
}

SCHEMA = TableSchema.of(
    ("id", SqlType.INTEGER), ("tag", SqlType.VARCHAR),
    ("loc", SqlType.VARCHAR), ("rtime", SqlType.INTEGER),
    ("qty", SqlType.INTEGER))


def _rows():
    rng = random.Random(41)
    return [
        (i,
         f"t{rng.randrange(64):02d}",          # scattered, ndv 64 -> dict
         f"L{(i // 512) % 64}",                # clustered runs -> RLE
         rng.randrange(100000),
         None if rng.random() < 0.05 else rng.randrange(100))
        for i in range(STREAM_ROWS)]


@pytest.fixture(scope="module")
def stream_rows():
    return _rows()


@pytest.fixture(scope="module")
def encoded_db(stream_rows):
    db = Database(encode=True)
    db.create_table("reads", SCHEMA)
    db.load("reads", stream_rows)
    return db


@pytest.fixture(scope="module")
def plain_db(stream_rows):
    db = Database(encode=False)
    db.create_table("reads", SCHEMA)
    db.load("reads", stream_rows)
    return db


def _timed(db, sql):
    """(best wall-clock, rows, metrics) with the batch path live."""
    with forced_batch_size(1024):
        db.plan_cache.clear()
        result, metrics = db.execute_with_metrics(sql)  # warm caches
        best = float("inf")
        for _ in range(PASSES):
            start = time.perf_counter()
            result, metrics = db.execute_with_metrics(sql)
            best = min(best, time.perf_counter() - start)
    return best, result.rows, metrics


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_encoded_speedup(encoded_db, plain_db, workload, record_metrics):
    sql = WORKLOADS[workload]
    before_s, plain_rows, plain_metrics = _timed(plain_db, sql)
    assert plain_metrics.encoded_columns == 0

    after_s, encoded_rows, encoded_metrics = _timed(encoded_db, sql)
    assert encoded_rows == plain_rows, (
        f"encoding changed the {workload} result")
    assert encoded_metrics.encoded_columns > 0, (
        f"the {workload} scan fed no encoded columns")

    speedup = before_s / after_s
    record_metrics(
        f"encoded-{workload}", encoded_metrics,
        rows=len(plain_rows),
        before_s=round(before_s, 6),
        after_s=round(after_s, 6),
        speedup=round(speedup, 3),
    )
    if BENCH_SMOKE or (os.cpu_count() or 1) < GATE_MIN_CPUS:
        return
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: encoded execution must be >={MIN_SPEEDUP}x faster "
        f"than plain (got {speedup:.2f}x: plain {before_s:.3f}s, "
        f"encoded {after_s:.3f}s)")


def test_dict_pages_shrink_data_file(tmp_path, stream_rows,
                                     record_metrics):
    """The dictionary page layout must cut ``data.pages`` by >= 30%.

    Purely deterministic (encode decisions and page fills depend only
    on the data), so this gates in smoke mode and on small hosts too.
    """
    sizes = {}
    for mode, encode in (("plain", False), ("encoded", True)):
        path = tmp_path / mode
        db = Database(storage="disk", storage_path=str(path),
                      encode=encode)
        db.create_table("reads", SCHEMA)
        db.load("reads", stream_rows)
        count = db.execute("select count(*) as n from reads").rows
        db.shutdown()
        assert count == [(STREAM_ROWS,)]
        sizes[mode] = os.path.getsize(path / "data.pages")

    ratio = sizes["encoded"] / sizes["plain"]
    record_metrics("encoded-data-pages",
                   plain_bytes=sizes["plain"],
                   encoded_bytes=sizes["encoded"],
                   ratio=round(ratio, 4))
    assert ratio <= MAX_SIZE_RATIO, (
        f"dictionary pages must shrink data.pages by >=30% "
        f"(got {ratio:.2%}: {sizes['encoded']} vs {sizes['plain']} bytes)")
