"""PR 4 acceptance benchmark: shard-parallel execution scaling curves.

Four workloads, each measured at ``REPRO_WORKERS`` ∈ {0, 2, 4}:

* **filter** and **join** — micro-workloads over a synthetic read
  stream (block-mode sharding; the dimension join's build side is a
  broadcast subtree);
* **rule-chain** — the full Φ_C cleansing chain via the naive rewrite
  on the db-10 workbench (key-mode sharding across cluster-key
  partitions);
* **e2e-joinback** — the end-to-end join-back rewrite on db-10, the
  paper's headline deferred-cleansing path.

Every mode must produce byte-identical rows to the serial run. The
acceptance gate — the join-back rewrite at 4 workers must be at least
2x faster than serial — is enforced only on machines that can actually
run 4 workers concurrently (``os.cpu_count() >= 4``) and outside
``REPRO_BENCH_SMOKE`` runs; the curves are recorded everywhere so
``BENCH_PR4.json`` tracks scaling per host.
"""

import os
import random
import time
from contextlib import contextmanager

import pytest
from conftest import BENCH_SCALE, BENCH_SMOKE

from repro.minidb import Database, SqlType, TableSchema

WORKER_COUNTS = (0, 2, 4)

#: Required end-to-end advantage of 4 workers over serial on the
#: join-back rewrite workload.
MIN_E2E_SPEEDUP = 2.0

#: The speedup gate needs real cores; a 1-2 CPU host time-slices the
#: workers and can only show overhead. Curves are still recorded.
GATE = not BENCH_SMOKE and (os.cpu_count() or 1) >= 4

PASSES = 1 if BENCH_SMOKE else 3

STREAM_ROWS = 3000 * BENCH_SCALE

MICRO_WORKLOADS = {
    "filter": ("select id, qty from reads "
               "where rtime < 60000 and qty > 10 and loc != 'L0'"),
    "join": ("select r.epc, d.zone, r.qty from reads r, dim d "
             "where r.loc = d.loc and r.rtime < 70000"),
}


@contextmanager
def worker_env(count):
    saved = os.environ.get("REPRO_WORKERS")
    os.environ["REPRO_WORKERS"] = str(count)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_WORKERS", None)
        else:
            os.environ["REPRO_WORKERS"] = saved


@pytest.fixture(scope="module")
def stream_db():
    rng = random.Random(47)
    db = Database()
    db.create_table("reads", TableSchema.of(
        ("id", SqlType.INTEGER), ("epc", SqlType.VARCHAR),
        ("loc", SqlType.VARCHAR), ("rtime", SqlType.INTEGER),
        ("qty", SqlType.INTEGER)))
    db.load("reads", [
        (i, f"epc{rng.randrange(400)}", f"L{rng.randrange(12)}",
         rng.randrange(100000), rng.randrange(100))
        for i in range(STREAM_ROWS)])
    db.create_table("dim", TableSchema.of(
        ("loc", SqlType.VARCHAR), ("zone", SqlType.VARCHAR)))
    db.load("dim", [(f"L{i}", f"Z{i % 4}") for i in range(12)])
    yield db
    db.close()


def _timed(run, workers):
    """(best wall-clock, rows, metrics) under *workers* shard workers."""
    with worker_env(workers):
        result, metrics = run()  # warm the plan cache and the pool
        best = float("inf")
        for _ in range(PASSES):
            start = time.perf_counter()
            result, metrics = run()
            best = min(best, time.perf_counter() - start)
    return best, result.rows, metrics


def _scaling_curve(run, record_metrics, label, sharded_expected):
    before_s, serial_rows, _ = _timed(run, 0)
    curve = {}
    for workers in WORKER_COUNTS[1:]:
        elapsed, rows, metrics = _timed(run, workers)
        assert rows == serial_rows, (
            f"{label}: {workers} workers changed the result")
        if sharded_expected:
            assert metrics.sharded_segments >= 1, (
                f"{label}: {workers} workers never dispatched a shard")
            assert metrics.pool_spawns == 0, (
                f"{label}: timed passes must reuse the warmed pool")
        curve[workers] = (elapsed, metrics)
    best_workers = min(curve, key=lambda workers: curve[workers][0])
    best_s = curve[best_workers][0]
    record_metrics(
        label, curve[best_workers][1],
        rows=len(serial_rows),
        before_s=round(before_s, 6),
        after={str(workers): round(elapsed, 6)
               for workers, (elapsed, _) in curve.items()},
        best_workers=best_workers,
        after_s=round(best_s, 6),
        speedup=round(before_s / best_s, 3),
        speedup_at_4=round(before_s / curve[4][0], 3),
        gate_enforced=GATE,
    )
    return before_s, curve


@pytest.mark.parametrize("workload", sorted(MICRO_WORKLOADS))
def test_micro_scaling(stream_db, workload, record_metrics):
    sql = MICRO_WORKLOADS[workload]

    def run():
        return stream_db.execute_with_metrics(sql)

    _scaling_curve(run, record_metrics, f"sharded-{workload}",
                   sharded_expected=not BENCH_SMOKE)


def test_rule_chain_scaling(db10_all_rules, record_metrics):
    """The full Φ_C rule chain (naive rewrite) sharded by cluster key."""
    bench = db10_all_rules
    sql = bench.q1(0.10)

    def run():
        result, metrics, _ = bench.engine.execute_with_metrics(
            sql, strategies={"naive"})
        return result, metrics

    _scaling_curve(run, record_metrics, "sharded-rule-chain",
                   sharded_expected=not BENCH_SMOKE)
    bench.database.close()


def test_e2e_joinback_scaling(db10_all_rules, record_metrics):
    """Acceptance gate: join-back rewrite >= 2x at 4 workers (4+ cores)."""
    bench = db10_all_rules
    sql = bench.q1(0.40)

    def run():
        result, metrics, _ = bench.engine.execute_with_metrics(
            sql, strategies={"joinback"})
        return result, metrics

    before_s, curve = _scaling_curve(
        run, record_metrics, "sharded-e2e-joinback",
        sharded_expected=not BENCH_SMOKE)
    bench.database.close()
    if not GATE:
        return
    speedup = before_s / curve[4][0]
    assert speedup >= MIN_E2E_SPEEDUP, (
        f"e2e join-back: 4 workers must be >={MIN_E2E_SPEEDUP}x faster "
        f"than serial (got {speedup:.2f}x: serial {before_s:.3f}s, "
        f"4 workers {curve[4][0]:.3f}s)")
