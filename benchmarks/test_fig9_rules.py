"""Figure 9 (a) and (b): elapsed time vs number of rules (1..5).

Rules are added in Table 1 order; the expanded rewrite exists only for
the first three (the cycle rule's unbounded context ends it), join-back
for all five. The missing rule's derived union input adds the largest
increment, as in the paper.
"""

import pytest
from conftest import once, settings

from repro.errors import RewriteError
from repro.experiments.common import workbench_for
from repro.workloads import STANDARD_RULE_ORDER

SELECTIVITY = 0.10


def bench_for(rule_count):
    return workbench_for(settings(10.0),
                         rule_names=STANDARD_RULE_ORDER[:rule_count])


@pytest.mark.parametrize("rule_count", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("variant", ["q_e", "q_j"])
@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig9_rules(benchmark, query_name, variant, rule_count):
    bench = bench_for(rule_count)
    sql = getattr(bench, query_name)(SELECTIVITY)
    strategy = "expanded" if variant == "q_e" else "joinback"
    benchmark.group = f"fig9-{query_name}-{variant}"
    if variant == "q_e" and rule_count > 3:
        with pytest.raises(RewriteError):
            bench.engine.execute(sql, strategies={strategy})
        pytest.skip("expanded rewrite infeasible beyond 3 rules (paper)")
    once(benchmark, lambda: bench.engine.execute(sql,
                                                 strategies={strategy}))


@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig9_feasibility_boundary(benchmark, query_name):
    """Expanded exists exactly for rule prefixes of length 1..3."""
    def feasibility():
        flags = []
        for rule_count in range(1, 6):
            bench = bench_for(rule_count)
            sql = getattr(bench, query_name)(SELECTIVITY)
            flags.append(bench.engine.rewrite(sql).analysis.feasible)
        return flags

    flags = once(benchmark, feasibility)
    assert flags == [True, True, True, False, False]


def test_fig9_shared_sort_increment_small(benchmark):
    """Rules 1->3 share one ordering requirement: the third rule must
    cost far less than the first (no extra sort, only extra scalar
    aggregates)."""
    import time

    def measure(rule_count):
        bench = bench_for(rule_count)
        sql = bench.q1(SELECTIVITY)
        start = time.perf_counter()
        bench.engine.execute(sql, strategies={"joinback"})
        return time.perf_counter() - start

    def increments():
        base = measure(1)
        three = measure(3)
        five = measure(5)
        return base, three, five

    base, three, five = once(benchmark, increments)
    assert three < 3.0 * base, "rules 2-3 must piggyback on one sort"
    assert five > three, "the missing rule adds the most overhead"
