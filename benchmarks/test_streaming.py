"""PR 5 acceptance benchmark: streaming appends patch warm regions.

A dashboard re-issues a panel of aggregate queries every refresh tick
while a trickle of new reads arrives through ``Database.append``
between ticks. With the region cache on, each append dirties only the
few sequences it touched; the first panel query after an append
re-cleanses just those sequences and splices them into the cached
region, and the rest of the panel are pure region-cache hits
("warm-patched"). The uncached engine pays the full two-rule
sort+window cleanse for every panel query ("cold"). Steady-state
warm-patched must be at least 3x faster than cold, with row-identical
results, and the ``sequences_recleaned`` metric must prove only dirty
sequences were re-cleansed.

The stream is carved out of the generated dataset itself: all reads of
a handful of case EPCs are withheld from the initial load and then
appended in rtime order, so every appended row is a plausible late
arrival (≤1% of rows per chunk, ≤5% of sequences dirty).
"""

import dataclasses
import time

import pytest
from conftest import BENCH_SMOKE, settings

from repro.datagen.loader import load_into_database
from repro.experiments.common import workbench_for
from repro.rewrite.cache import CacheOptions
from repro.rewrite.engine import DeferredCleansingEngine
from repro.workloads import timestamp_for_fraction_below
from repro.workloads.rules import make_registry

QUERY = ("select reader, count(*) as n, avg(rtime) as mean_rtime "
         "from caser where rtime <= {t} group by reader")

#: One refresh tick: the widest window first (it owns the cached
#: region), then narrower panels whose windows it subsumes.
PANEL = [0.85, 0.35, 0.55, 0.70]

#: Distinct case EPCs whose reads arrive late, and in how many chunks.
STREAM_EPCS = 6
STREAM_CHUNKS = 5

MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def stream_setup():
    """A fresh database loaded without the streamed EPCs' reads.

    Built from the cached workbench's *data* (generation amortized
    across the suite) but loaded into its own database so the appends
    cannot leak into session-cached workbenches.
    """
    base = workbench_for(settings(10.0), rule_names=("reader", "duplicate"))
    data = base.data

    epcs = list(dict.fromkeys(row[0] for row in data.case_reads))
    stream_epcs = set(epcs[:: max(1, len(epcs) // STREAM_EPCS)][:STREAM_EPCS])
    held = sorted((row for row in data.case_reads
                   if row[0] in stream_epcs), key=lambda row: row[1])
    prefix = [row for row in data.case_reads if row[0] not in stream_epcs]
    assert held and prefix

    db = load_into_database(dataclasses.replace(data, case_reads=prefix))
    registry = make_registry(None, data, ("reader", "duplicate"))

    per_chunk = max(1, (len(held) + STREAM_CHUNKS - 1) // STREAM_CHUNKS)
    chunks = [held[i:i + per_chunk]
              for i in range(0, len(held), per_chunk)]

    # The ISSUE's "small append" envelope: each chunk is ≤1% of the
    # table and dirties ≤5% of the cluster-key sequences.
    assert all(len(chunk) <= max(1, len(prefix) // 100)
               for chunk in chunks)
    assert len(stream_epcs) <= max(1, len(epcs) // 20)

    rtimes = [row[1] for row in data.case_reads]
    queries = [QUERY.format(t=timestamp_for_fraction_below(rtimes, sel))
               for sel in PANEL]
    try:
        yield db, registry, chunks, queries
    finally:
        db.close()


def test_streaming_appends_warm_patched_vs_cold(stream_setup,
                                                record_metrics):
    db, registry, chunks, queries = stream_setup

    cached = DeferredCleansingEngine(db, registry, cache=CacheOptions())
    uncached = DeferredCleansingEngine(db, registry)

    # Tick 0 pays the one-time region materialization (not gated).
    cached.execute(queries[0])

    warm_elapsed = cold_elapsed = 0.0
    recleaned_total = 0
    for chunk in chunks:
        db.append("caser", chunk)
        dirty = len({row[0] for row in chunk})

        start = time.perf_counter()
        first_result, metrics, _ = cached.execute_with_metrics(queries[0])
        warm_rows = [first_result.rows] + [
            cached.execute(sql).rows for sql in queries[1:]]
        warm_elapsed += time.perf_counter() - start

        start = time.perf_counter()
        cold_rows = [uncached.execute(sql).rows for sql in queries]
        cold_elapsed += time.perf_counter() - start

        for warm, cold in zip(warm_rows, cold_rows):
            assert sorted(warm) == sorted(cold), \
                "patched region must answer identically to a full cleanse"
        # Only the first panel query re-cleansed anything, and only the
        # sequences this chunk touched.
        assert metrics.cache_patches == 1
        assert metrics.delta_epochs_applied >= 1
        assert 0 < metrics.sequences_recleaned <= dirty
        recleaned_total += metrics.sequences_recleaned

    cache = cached.region_cache
    assert cache is not None
    assert cache.stores == 1, "the region must never be re-materialized"
    assert cache.patches == len(chunks)
    assert cache.invalidations == 0
    assert cache.hits == len(chunks) * len(queries)

    speedup = cold_elapsed / warm_elapsed
    record_metrics(
        "streaming-appends", None,
        chunks=len(chunks),
        panel_queries=len(queries),
        appended_rows=sum(len(chunk) for chunk in chunks),
        sequences_recleaned=recleaned_total,
        warm_patched_s=round(warm_elapsed, 6),
        cold_s=round(cold_elapsed, 6),
        speedup=round(speedup, 3),
        region_cache={"hits": cache.hits, "misses": cache.misses,
                      "stores": cache.stores, "patches": cache.patches,
                      "invalidations": cache.invalidations},
    )
    if BENCH_SMOKE:
        return
    assert speedup >= MIN_SPEEDUP, (
        f"warm-patched must be >={MIN_SPEEDUP}x faster than cold "
        f"(got {speedup:.2f}x: warm {warm_elapsed:.3f}s, "
        f"cold {cold_elapsed:.3f}s)")
