"""Figure 8: q2' — the EPC-uncorrelated predicate kills join-back's edge.

The step-type predicate selects many reads but barely shrinks the EPC
set, so the join-back rewrite loses its main advantage and lands in the
same ballpark as the expanded rewrite (the paper's "q2'_j is no longer
much better than q2'_e").
"""

import time

import pytest
from conftest import once

SELECTIVITIES = (0.10, 0.40)
VARIANTS = {"q_e": "expanded", "q_j": "joinback", "q_n": "naive"}


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_fig8(benchmark, db10_reader_only, variant, selectivity):
    bench = db10_reader_only
    sql = bench.q2_prime(selectivity)
    benchmark.group = f"fig8-q2p-sel{int(selectivity * 100)}"
    once(benchmark, lambda: bench.engine.execute(
        sql, strategies={VARIANTS[variant]}))


def test_fig8_epc_reduction_contrast(benchmark, db10_reader_only):
    """The mechanism behind Figure 8: the site predicate shrinks the
    relevant EPC set, the type predicate does not."""
    bench = db10_reader_only
    db = bench.database

    def distinct_epcs(sql):
        return db.execute(sql).scalar()

    def contrast():
        total = distinct_epcs("select count(distinct epc) from caser")
        by_site = distinct_epcs(
            "select count(distinct c.epc) from caser c, locs l "
            "where c.biz_loc = l.gln and "
            f"l.site = '{bench.default_site()}'")
        by_type = distinct_epcs(
            "select count(distinct c.epc) from caser c, steps s "
            "where c.biz_step = s.biz_step and s.type = 'type_03'")
        return total, by_site, by_type

    total, by_site, by_type = once(benchmark, contrast)
    assert by_site < 0.5 * total, "site predicate must prune EPCs"
    assert by_type > 0.9 * total, "type predicate must not prune EPCs"


def test_fig8_joinback_loses_its_edge(benchmark, db10_reader_only):
    """q2'_j / q2'_e must be much closer than q2_j / q2_e at 40%."""
    bench = db10_reader_only

    def measure(sql, strategy):
        start = time.perf_counter()
        bench.engine.execute(sql, strategies={strategy})
        return time.perf_counter() - start

    def ratios():
        q2 = bench.q2(0.40)
        q2p = bench.q2_prime(0.40)
        correlated = measure(q2, "joinback") / measure(q2, "expanded")
        uncorrelated = measure(q2p, "joinback") / measure(q2p, "expanded")
        return correlated, uncorrelated

    correlated, uncorrelated = once(benchmark, ratios)
    # Join-back helps q2 (ratio < 1) and helps q2' much less.
    assert uncorrelated > correlated
