"""Shared fixtures for the benchmark harness.

Scale is controlled by REPRO_BENCH_SCALE (default 12, ~18k case reads)
so the full suite regenerates every figure in minutes on a laptop; raise
it for better-separated curves. Workbenches are session-cached through
the experiment harness, mirroring the paper's pre-loaded db-10..db-40.

Every benchmark run also appends machine-readable results to
``BENCH_PR10.json`` at the repo root (the per-PR successor to PR 9's
``BENCH_PR9.json``): one wall-clock record per test — stamped with the
process's peak heap bytes (``ru_maxrss``) so memory regressions show
up next to timing ones — plus any :class:`ExecutionMetrics` rows a
test explicitly records via the ``record_metrics`` fixture, all under
a ``host`` block capturing the machine and knob configuration the
numbers were taken on. The file tracks the perf trajectory across PRs
without having to parse pytest-benchmark output.

``REPRO_BENCH_SMOKE=1`` switches the suite to a correctness smoke run:
iteration counts drop to the minimum and timing-ratio assertions are
skipped (executor exceptions still fail) — this is what the CI smoke
job runs.
"""

import dataclasses
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings, workbench_for

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "12"))

BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: Smoke mode: run everything once, assert correctness, skip timing bars.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

#: Knob environment variables snapshotted into every results file, so a
#: recorded number can always be tied back to the configuration that
#: produced it.
_KNOB_ENV = ("REPRO_CODEGEN", "REPRO_WORKERS", "REPRO_BATCH_SIZE",
             "REPRO_ENCODE",
             "REPRO_PARALLEL", "REPRO_BENCH_SCALE", "REPRO_BENCH_SMOKE",
             "REPRO_STORAGE", "REPRO_BUFFER_PAGES", "REPRO_PAGE_SIZE",
             "REPRO_WAL_LIMIT", "REPRO_GROUP_COMMIT", "REPRO_READAHEAD",
             "REPRO_ZONE_PRUNE", "REPRO_SERVE_WORKERS",
             "REPRO_SERVE_INFLIGHT", "REPRO_SERVE_SESSION_DEPTH")


def host_metadata() -> dict:
    """Machine + knob configuration for the results payload."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
        "knobs": {name: os.environ.get(name) for name in _KNOB_ENV
                  if os.environ.get(name) is not None},
    }


@pytest.fixture(scope="session")
def bench_records():
    """Accumulates result rows; written to BENCH_PR10.json at session end."""
    records = []
    yield records
    payload = {"bench_scale": BENCH_SCALE, "host": host_metadata(),
               "records": records}
    BENCH_RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                                  encoding="utf-8")


@pytest.fixture(autouse=True)
def _record_wallclock(request, bench_records):
    """Wall-clock for every benchmark test, including fixture-free ones."""
    start = time.perf_counter()
    yield
    # ru_maxrss is kilobytes on Linux; the high-water mark is monotone
    # across the session, so per-test deltas are not meaningful — the
    # stamp records "peak heap by the time this test finished".
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    bench_records.append({
        "kind": "wallclock",
        "test": request.node.nodeid,
        "elapsed_s": round(time.perf_counter() - start, 6),
        "heap_peak_bytes": peak_kb * 1024,
    })


@pytest.fixture()
def record_metrics(request, bench_records):
    """Callable fixture: ``record_metrics(label, metrics, **extra)``.

    Appends one row with the dataclass fields of an ExecutionMetrics
    (or any dataclass) plus arbitrary extra scalars.
    """
    def _record(label, metrics=None, **extra):
        row = {"kind": "metrics", "test": request.node.nodeid,
               "label": label}
        if metrics is not None:
            row["metrics"] = dataclasses.asdict(metrics)
        row.update(extra)
        bench_records.append(row)
    return _record


def settings(anomaly_percent: float = 10.0) -> ExperimentSettings:
    return ExperimentSettings(scale=BENCH_SCALE,
                              anomaly_percent=anomaly_percent)


@pytest.fixture(scope="session")
def db10_reader_only():
    """db-10 with only the reader rule (the Figure 7/8 setup)."""
    return workbench_for(settings(10.0), rule_names=("reader",))


@pytest.fixture(scope="session")
def db10_all_rules():
    """db-10 with all five rules (Figure 9 a/b endpoint)."""
    return workbench_for(settings(10.0))


def once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing.

    The measured operations take hundreds of milliseconds on realistic
    scales; multiple rounds would only slow the suite without improving
    the comparison the figures need.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
