"""Shared fixtures for the benchmark harness.

Scale is controlled by REPRO_BENCH_SCALE (default 12, ~18k case reads)
so the full suite regenerates every figure in minutes on a laptop; raise
it for better-separated curves. Workbenches are session-cached through
the experiment harness, mirroring the paper's pre-loaded db-10..db-40.
"""

import os

import pytest

from repro.experiments.common import ExperimentSettings, workbench_for

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "12"))


def settings(anomaly_percent: float = 10.0) -> ExperimentSettings:
    return ExperimentSettings(scale=BENCH_SCALE,
                              anomaly_percent=anomaly_percent)


@pytest.fixture(scope="session")
def db10_reader_only():
    """db-10 with only the reader rule (the Figure 7/8 setup)."""
    return workbench_for(settings(10.0), rule_names=("reader",))


@pytest.fixture(scope="session")
def db10_all_rules():
    """db-10 with all five rules (Figure 9 a/b endpoint)."""
    return workbench_for(settings(10.0))


def once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing.

    The measured operations take hundreds of milliseconds on realistic
    scales; multiple rounds would only slow the suite without improving
    the comparison the figures need.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
