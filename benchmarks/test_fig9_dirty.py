"""Figure 9 (c) and (d): elapsed time vs anomaly percentage (db-10..40).

First three rules, rtime selectivity 10%. The paper's observation: the
rewrites' cost grows only slightly with more anomalies and tracks the
trend of the original query.
"""

import pytest
from conftest import once, settings

from repro.experiments.common import workbench_for

LEVELS = (10.0, 20.0, 30.0, 40.0)
RULES = ("reader", "duplicate", "replacing")
SELECTIVITY = 0.10


def bench_for(level):
    return workbench_for(settings(level), rule_names=RULES)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("variant", ["q", "q_e", "q_j"])
@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig9_dirty(benchmark, query_name, variant, level):
    bench = bench_for(level)
    sql = getattr(bench, query_name)(SELECTIVITY)
    benchmark.group = f"fig9-dirty-{query_name}-{variant}"
    if variant == "q":
        once(benchmark, lambda: bench.database.execute(sql))
        return
    strategy = "expanded" if variant == "q_e" else "joinback"
    once(benchmark, lambda: bench.engine.execute(sql,
                                                 strategies={strategy}))


@pytest.mark.parametrize("query_name", ["q1", "q2"])
def test_fig9_dirty_growth_is_mild(benchmark, query_name):
    """Quadrupling the anomaly rate must not blow up the rewrites."""
    import time

    def measure(level):
        bench = bench_for(level)
        sql = getattr(bench, query_name)(SELECTIVITY)
        start = time.perf_counter()
        bench.engine.execute(sql, strategies={"joinback"})
        return time.perf_counter() - start

    def growth():
        return measure(10.0), measure(40.0)

    low, high = once(benchmark, growth)
    assert high < 4.0 * low, (
        "join-back at 40% anomalies should grow mildly, not linearly "
        "with the anomaly budget")
